//===- shading/ShaderGallery.cpp - The ten benchmark shaders ----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "shading/ShaderGallery.h"

#include <cassert>

using namespace dspec;

// Shader 1: "plastic" — the classic non-iterative Phong plastic model.
// Simple shaders like this bound the low end of the Figure 7 speedups.
static const char *PlasticSource = R"(
// Phong plastic: ambient + diffuse + specular over a uniform base color.
vec3 plastic(vec2 uv, vec3 P, vec3 N, vec3 I,
             float ka, float kd, float ks, float roughness,
             float lightx, float lighty, float lightz,
             float baser, float baseg, float baseb) {
  vec3 Lv = normalize(vec3(lightx, lighty, lightz) - P);
  float diff = max(dot(N, Lv), 0.0);
  vec3 Hv = normalize(Lv + I);
  float highlight = pow(max(dot(N, Hv), 0.0), 1.0 / roughness);
  vec3 base = vec3(baser, baseg, baseb);
  vec3 col = base * (ka + kd * diff) + vec3(ks * highlight);
  return clamp(col, 0.0, 1.0);
}
)";

// Shader 2: "matte" — two-light diffuse with per-channel gamma; no
// specular term.
static const char *MatteSource = R"(
// Two diffuse lights with intensities i1/i2, a warm tint, and gamma
// correction applied per channel.
vec3 matte(vec2 uv, vec3 P, vec3 N, vec3 I,
           float ka, float kd, float i1, float i2,
           float l1x, float l1y, float l1z,
           float l2x, float l2y, float l2z,
           float gamma, float tint) {
  vec3 L1 = normalize(vec3(l1x, l1y, l1z) - P);
  vec3 L2 = normalize(vec3(l2x, l2y, l2z) - P);
  float d1 = i1 * max(dot(N, L1), 0.0);
  float d2 = i2 * max(dot(N, L2), 0.0);
  float lum = ka + kd * (d1 + d2);
  vec3 warm = vec3(1.0, 0.95 - 0.1 * tint, 0.9 - 0.25 * tint);
  vec3 col = warm * lum;
  col = vec3(pow(max(col.x, 0.0), gamma),
             pow(max(col.y, 0.0), gamma),
             pow(max(col.z, 0.0), gamma));
  return clamp(col, 0.0, 1.0);
}
)";

// Shader 3: "marble" — iterative fractal noise (a dsc-level fBm loop)
// warped through a sine; one of the expensive noise shaders whose cached
// partitions reach the top of Figure 7.
static const char *MarbleSource = R"(
// Marble veins: fBm accumulated in-language, driving a sine-warped
// smoothstep between vein and base color, lit by one Phong light.
vec3 marble(vec2 uv, vec3 P, vec3 N, vec3 I,
            float ka, float kd, float ks, float roughness,
            float lightx, float lighty, float lightz,
            float veinscale, float veinfreq, float squash,
            float veinr, float veing, float veinb,
            float contrast) {
  vec3 q = vec3(P.x, P.y * squash, P.z) * veinscale;
  float sum = 0.0;
  float amp = 1.0;
  float freq = veinfreq;
  for (int oct = 0; oct < 9; oct = oct + 1) {
    sum = sum + amp * noise(q * freq);
    amp = amp * 0.5;
    freq = freq * 2.07;
  }
  // Secondary displacement field at a fixed scale: warps the vein phase.
  float disp = 0.0;
  float damp = 0.6;
  vec3 dq = P * 5.3;
  for (int oct = 0; oct < 5; oct = oct + 1) {
    disp = disp + damp * noise(dq);
    damp = damp * 0.5;
    dq = dq * 2.0;
  }
  float vein = sin((P.x + disp * 0.7 + contrast * sum) * 8.0);
  vein = smoothstep(-0.9, 0.9, vein);
  vec3 veincol = vec3(veinr, veing, veinb);
  vec3 basecol = vec3(0.92, 0.9, 0.85);
  vec3 surf = mix(veincol, basecol, vein);
  vec3 Lv = normalize(vec3(lightx, lighty, lightz) - P);
  float diff = max(dot(N, Lv), 0.0);
  vec3 Hv = normalize(Lv + I);
  float highlight = ks * pow(max(dot(N, Hv), 0.0), 1.0 / roughness);
  vec3 col = surf * (ka + kd * diff) + vec3(highlight);
  return clamp(col, 0.0, 1.0);
}
)";

// Shader 4: "wood" — concentric rings distorted by in-language
// turbulence, plus grain flecks; the most expensive gallery shader.
static const char *WoodSource = R"(
// Wood: ring distance in the x/z plane, distorted by a turbulence loop,
// quantized by smoothstep into early/late wood, with high-frequency
// grain flecks layered on top.
vec3 wood(vec2 uv, vec3 P, vec3 N, vec3 I,
          float ka, float kd, float ks, float roughness,
          float lightx, float lighty, float lightz,
          float ringfreq, float grain, float turbscale,
          float squish, float ringsharp,
          float darkr, float darkg, float darkb) {
  vec3 q = vec3(P.x, P.y * squish, P.z) * turbscale;
  float turb = 0.0;
  float amp = 1.0;
  vec3 qq = q;
  for (int oct = 0; oct < 9; oct = oct + 1) {
    turb = turb + amp * abs(noise(qq));
    amp = amp * 0.5;
    qq = qq * 2.0;
  }
  float r = length(vec2(P.x, P.z)) * ringfreq + 4.0 * turb;
  float ring = fract(r);
  float band = smoothstep(0.2, 0.2 + ringsharp, ring)
             - smoothstep(0.8 - ringsharp, 0.8, ring);
  float fleck = grain * abs(noise(q * 23.0));
  vec3 dark = vec3(darkr, darkg, darkb);
  vec3 late = vec3(0.68, 0.45, 0.25);
  vec3 surf = mix(late, dark, band);
  surf = surf - vec3(fleck * 0.3);
  vec3 Lv = normalize(vec3(lightx, lighty, lightz) - P);
  float diff = max(dot(N, Lv), 0.0);
  vec3 Hv = normalize(Lv + I);
  float highlight = ks * pow(max(dot(N, Hv), 0.0), 1.0 / roughness);
  vec3 col = surf * (ka + kd * diff) + vec3(highlight);
  return clamp(col, 0.0, 1.0);
}
)";

// Shader 5: "granite" — turbulence-driven speckle with contrast shaping;
// expensive like marble/wood but with a different dependence structure.
static const char *GraniteSource = R"(
// Granite: 5-octave in-language turbulence remapped by a contrast power
// curve, tinted, and lit by one light.
vec3 granite(vec2 uv, vec3 P, vec3 N, vec3 I,
             float ka, float kd, float ks, float roughness,
             float lightx, float lighty, float lightz,
             float scale, float speckle, float contrast,
             float tintr, float tintg, float tintb) {
  vec3 q = P * scale;
  float sum = 0.0;
  float amp = 1.0;
  for (int oct = 0; oct < 8; oct = oct + 1) {
    sum = sum + amp * abs(noise(q));
    amp = amp * 0.55;
    q = q * 2.1;
  }
  // Fine mineral detail at a fixed frequency.
  float detail = 0.0;
  float damp = 0.4;
  vec3 dq = P * 31.0;
  for (int oct = 0; oct < 4; oct = oct + 1) {
    detail = detail + damp * abs(noise(dq));
    damp = damp * 0.5;
    dq = dq * 2.0;
  }
  float g = pow(clamp(sum + 0.3 * detail, 0.0, 1.0), contrast);
  g = mix(g, fract(g * 7.0), speckle * 0.2);
  vec3 surf = vec3(tintr, tintg, tintb) * g;
  vec3 Lv = normalize(vec3(lightx, lighty, lightz) - P);
  float diff = max(dot(N, Lv), 0.0);
  vec3 Hv = normalize(Lv + I);
  float highlight = ks * pow(max(dot(N, Hv), 0.0), 1.0 / roughness);
  vec3 col = surf * (ka + kd * diff) + vec3(highlight);
  return clamp(col, 0.0, 1.0);
}
)";

// Shader 6: "checker" — an antialiased checkerboard in uv space; cheap
// and non-iterative.
static const char *CheckerSource = R"(
// Smooth checkerboard: fuzzy square wave in u and v, xor-combined, over
// two colors, Phong lit.
vec3 checker(vec2 uv, vec3 P, vec3 N, vec3 I,
             float checkfreq, float blur,
             float ka, float kd, float ks, float roughness,
             float lightx, float lighty, float lightz,
             float r1, float g1) {
  float fu = fract(uv.x * checkfreq);
  float fv = fract(uv.y * checkfreq);
  float su = smoothstep(0.0, blur, fu) - smoothstep(0.5, 0.5 + blur, fu);
  float sv = smoothstep(0.0, blur, fv) - smoothstep(0.5, 0.5 + blur, fv);
  float check = su + sv - 2.0 * su * sv;
  vec3 c1 = vec3(r1, g1, 0.15);
  vec3 c2 = vec3(0.95, 0.95, 0.9);
  vec3 surf = mix(c1, c2, check);
  vec3 Lv = normalize(vec3(lightx, lighty, lightz) - P);
  float diff = max(dot(N, Lv), 0.0);
  vec3 Hv = normalize(Lv + I);
  float highlight = ks * pow(max(dot(N, Hv), 0.0), 1.0 / roughness);
  vec3 col = surf * (ka + kd * diff) + vec3(highlight);
  return clamp(col, 0.0, 1.0);
}
)";

// Shader 7: "metal" — a glossy conductor with a striped environment
// approximation reflected through the view vector.
static const char *MetalSource = R"(
// Brushed metal: reflection vector samples a procedural striped
// "environment"; anisotropy stretches the highlight.
vec3 metal(vec2 uv, vec3 P, vec3 N, vec3 I,
           float ka, float ks, float roughness, float aniso,
           float envfreq, float envamp,
           float lightx, float lighty, float lightz,
           float tintr, float tintg, float tintb) {
  vec3 R = reflect(-I, N);
  float band = sin(R.y * envfreq) * 0.5 + 0.5;
  float env = envamp * (0.4 + 0.6 * band);
  vec3 Lv = normalize(vec3(lightx, lighty, lightz) - P);
  vec3 Hv = normalize(Lv + I);
  float hd = max(dot(N, Hv), 0.0);
  float stretch = 1.0 + aniso * abs(Hv.x);
  float highlight = ks * pow(hd, stretch / roughness);
  vec3 tint = vec3(tintr, tintg, tintb);
  vec3 col = tint * (ka + env) + tint * highlight;
  return clamp(col, 0.0, 1.0);
}
)";

// Shader 8: "stripes" — rotated soft stripes (a RenderMan-companion
// staple), Phong lit.
static const char *StripesSource = R"(
// Soft stripes: uv rotated by 'angle', a fuzzy pulse train across the
// rotated coordinate, two colors, one light.
vec3 stripes(vec2 uv, vec3 P, vec3 N, vec3 I,
             float freq, float angle, float width, float fuzz,
             float ka, float kd, float ks, float roughness,
             float lightx, float lighty, float lightz,
             float r1, float g1, float b1) {
  float s = uv.x * cos(angle) + uv.y * sin(angle);
  float t = fract(s * freq);
  float stripe = smoothstep(0.0, fuzz, t)
               - smoothstep(width, width + fuzz, t);
  vec3 c1 = vec3(r1, g1, b1);
  vec3 c2 = vec3(0.1, 0.1, 0.25);
  vec3 surf = mix(c2, c1, stripe);
  vec3 Lv = normalize(vec3(lightx, lighty, lightz) - P);
  float diff = max(dot(N, Lv), 0.0);
  vec3 Hv = normalize(Lv + I);
  float highlight = ks * pow(max(dot(N, Hv), 0.0), 1.0 / roughness);
  vec3 col = surf * (ka + kd * diff) + vec3(highlight);
  return clamp(col, 0.0, 1.0);
}
)";

// Shader 9: "clouds" — a two-layer turbulent sky dome with a sun disc;
// iterative and noise-heavy, no surface lighting.
static const char *CloudsSource = R"(
// Sky dome: two turbulence layers at different scales form cloud
// coverage; a sun disc with haze is composited over the gradient sky.
vec3 clouds(vec2 uv, vec3 P, vec3 N, vec3 I,
            float scale1, float scale2, float offsetx, float offsety,
            float density, float sharpness,
            float sunx, float suny, float sunz,
            float sunr, float sung, float sunb,
            float skyr, float skyg, float skyb,
            float haze) {
  vec3 dir = normalize(vec3(uv.x * 2.0 - 1.0, uv.y * 2.0 - 1.0, 1.0));
  vec3 q1 = vec3(uv.x * scale1 + offsetx, uv.y * scale1 + offsety, 0.5);
  vec3 q2 = vec3(uv.x * scale2 - offsety, uv.y * scale2 + offsetx, 1.7);
  float t1 = 0.0;
  float amp = 1.0;
  for (int oct = 0; oct < 7; oct = oct + 1) {
    t1 = t1 + amp * abs(noise(q1));
    amp = amp * 0.5;
    q1 = q1 * 2.0;
  }
  float t2 = 0.0;
  amp = 1.0;
  for (int oct = 0; oct < 5; oct = oct + 1) {
    t2 = t2 + amp * abs(noise(q2));
    amp = amp * 0.5;
    q2 = q2 * 2.0;
  }
  float cover = smoothstep(1.0 - density, 1.0 - density + sharpness,
                           0.6 * t1 + 0.4 * t2);
  vec3 sundir = normalize(vec3(sunx, suny, sunz));
  float sunamt = pow(max(dot(dir, sundir), 0.0), 24.0);
  vec3 sky = vec3(skyr, skyg, skyb) * (1.0 - 0.35 * uv.y);
  vec3 suncol = vec3(sunr, sung, sunb);
  vec3 col = mix(sky, vec3(1.0, 1.0, 1.0), cover);
  col = col + suncol * (sunamt + haze * 0.2);
  return clamp(col, 0.0, 1.0);
}
)";

// Shader 10: "rings" — the 14-parameter shader of the Figure 9/10 cache
// limiting study. Its parameter list mirrors the paper's legend
// (light color channels, ringscale, roughness, ks, kd, ambient, light
// position, grain, ...).
static const char *RingsSource = R"(
// Rings: concentric bands around the y axis perturbed by in-language
// turbulence, lit by a colored Phong light.
vec3 rings(vec2 uv, vec3 P, vec3 N, vec3 I,
           float redl, float greenl, float bluel,
           float ringscale, float roughness, float ks, float kd,
           float ambient,
           float lightx, float lighty, float lightz,
           float grain, float squish, float txtscale) {
  vec3 q = vec3(P.x, P.y * squish, P.z) * txtscale;
  float turb = 0.0;
  float amp = 1.0;
  vec3 qq = q;
  for (int oct = 0; oct < 6; oct = oct + 1) {
    turb = turb + amp * abs(noise(qq));
    amp = amp * 0.5;
    qq = qq * 2.0;
  }
  float r = length(vec2(q.x, q.z)) * ringscale + grain * turb;
  float ring = fract(r);
  float band = smoothstep(0.25, 0.45, ring) - smoothstep(0.65, 0.85, ring);
  vec3 dark = vec3(0.32, 0.18, 0.08);
  vec3 light = vec3(0.66, 0.44, 0.24);
  vec3 surf = mix(light, dark, band);
  vec3 Lv = normalize(vec3(lightx, lighty, lightz) - P);
  vec3 lcol = vec3(redl, greenl, bluel);
  float diff = max(dot(N, Lv), 0.0);
  vec3 Hv = normalize(Lv + I);
  float highlight = pow(max(dot(N, Hv), 0.0), 1.0 / roughness);
  vec3 col = surf * (ambient + kd * diff) * lcol + lcol * (ks * highlight);
  return clamp(col, 0.0, 1.0);
}
)";

static std::vector<ShaderInfo> makeGallery() {
  std::vector<ShaderInfo> Gallery;

  auto Add = [&](unsigned Index, const char *Name, const char *Source,
                 std::vector<ControlParam> Controls) {
    ShaderInfo Info;
    Info.Index = Index;
    Info.Name = Name;
    Info.Source = Source;
    Info.Controls = std::move(Controls);
    Gallery.push_back(std::move(Info));
  };

  Add(1, "plastic", PlasticSource,
      {{"ka", 0.2f, 0.0f, 0.6f},
       {"kd", 0.6f, 0.1f, 1.0f},
       {"ks", 0.5f, 0.0f, 1.0f},
       {"roughness", 0.12f, 0.02f, 0.5f},
       {"lightx", 2.0f, -4.0f, 4.0f},
       {"lighty", 3.0f, -4.0f, 4.0f},
       {"lightz", 4.0f, 1.0f, 8.0f},
       {"baser", 0.8f, 0.0f, 1.0f},
       {"baseg", 0.2f, 0.0f, 1.0f},
       {"baseb", 0.25f, 0.0f, 1.0f}});

  Add(2, "matte", MatteSource,
      {{"ka", 0.15f, 0.0f, 0.5f},
       {"kd", 0.8f, 0.1f, 1.2f},
       {"i1", 0.9f, 0.0f, 1.5f},
       {"i2", 0.4f, 0.0f, 1.5f},
       {"l1x", 2.5f, -4.0f, 4.0f},
       {"l1y", 2.0f, -4.0f, 4.0f},
       {"l1z", 3.5f, 1.0f, 8.0f},
       {"l2x", -3.0f, -4.0f, 4.0f},
       {"l2y", -1.0f, -4.0f, 4.0f},
       {"l2z", 2.0f, 1.0f, 8.0f},
       {"gamma", 0.9f, 0.4f, 2.2f},
       {"tint", 0.5f, 0.0f, 1.0f}});

  Add(3, "marble", MarbleSource,
      {{"ka", 0.25f, 0.0f, 0.6f},
       {"kd", 0.7f, 0.1f, 1.0f},
       {"ks", 0.3f, 0.0f, 1.0f},
       {"roughness", 0.1f, 0.02f, 0.5f},
       {"lightx", 2.0f, -4.0f, 4.0f},
       {"lighty", 3.0f, -4.0f, 4.0f},
       {"lightz", 4.0f, 1.0f, 8.0f},
       {"veinscale", 2.2f, 0.5f, 6.0f},
       {"veinfreq", 1.3f, 0.3f, 4.0f},
       {"squash", 1.4f, 0.5f, 3.0f},
       {"veinr", 0.25f, 0.0f, 1.0f},
       {"veing", 0.22f, 0.0f, 1.0f},
       {"veinb", 0.35f, 0.0f, 1.0f},
       {"contrast", 0.8f, 0.1f, 2.5f}});

  Add(4, "wood", WoodSource,
      {{"ka", 0.2f, 0.0f, 0.6f},
       {"kd", 0.75f, 0.1f, 1.0f},
       {"ks", 0.25f, 0.0f, 1.0f},
       {"roughness", 0.15f, 0.02f, 0.5f},
       {"lightx", 2.0f, -4.0f, 4.0f},
       {"lighty", 3.0f, -4.0f, 4.0f},
       {"lightz", 4.0f, 1.0f, 8.0f},
       {"ringfreq", 6.0f, 1.0f, 16.0f},
       {"grain", 0.5f, 0.0f, 2.0f},
       {"turbscale", 2.0f, 0.5f, 6.0f},
       {"squish", 1.8f, 0.5f, 4.0f},
       {"ringsharp", 0.12f, 0.02f, 0.4f},
       {"darkr", 0.35f, 0.0f, 1.0f},
       {"darkg", 0.2f, 0.0f, 1.0f},
       {"darkb", 0.08f, 0.0f, 1.0f}});

  Add(5, "granite", GraniteSource,
      {{"ka", 0.2f, 0.0f, 0.6f},
       {"kd", 0.7f, 0.1f, 1.0f},
       {"ks", 0.35f, 0.0f, 1.0f},
       {"roughness", 0.18f, 0.02f, 0.5f},
       {"lightx", 2.0f, -4.0f, 4.0f},
       {"lighty", 3.0f, -4.0f, 4.0f},
       {"lightz", 4.0f, 1.0f, 8.0f},
       {"scale", 4.0f, 1.0f, 10.0f},
       {"speckle", 1.0f, 0.0f, 3.0f},
       {"contrast", 1.4f, 0.3f, 3.0f},
       {"tintr", 0.75f, 0.0f, 1.0f},
       {"tintg", 0.72f, 0.0f, 1.0f},
       {"tintb", 0.68f, 0.0f, 1.0f}});

  Add(6, "checker", CheckerSource,
      {{"checkfreq", 6.0f, 1.0f, 16.0f},
       {"blur", 0.05f, 0.005f, 0.2f},
       {"ka", 0.2f, 0.0f, 0.6f},
       {"kd", 0.7f, 0.1f, 1.0f},
       {"ks", 0.4f, 0.0f, 1.0f},
       {"roughness", 0.14f, 0.02f, 0.5f},
       {"lightx", 2.0f, -4.0f, 4.0f},
       {"lighty", 3.0f, -4.0f, 4.0f},
       {"lightz", 4.0f, 1.0f, 8.0f},
       {"r1", 0.85f, 0.0f, 1.0f},
       {"g1", 0.15f, 0.0f, 1.0f}});

  Add(7, "metal", MetalSource,
      {{"ka", 0.15f, 0.0f, 0.5f},
       {"ks", 0.8f, 0.1f, 1.5f},
       {"roughness", 0.08f, 0.02f, 0.4f},
       {"aniso", 1.5f, 0.0f, 4.0f},
       {"envfreq", 8.0f, 1.0f, 24.0f},
       {"envamp", 0.5f, 0.0f, 1.5f},
       {"lightx", 2.0f, -4.0f, 4.0f},
       {"lighty", 3.0f, -4.0f, 4.0f},
       {"lightz", 4.0f, 1.0f, 8.0f},
       {"tintr", 0.9f, 0.0f, 1.0f},
       {"tintg", 0.78f, 0.0f, 1.0f},
       {"tintb", 0.5f, 0.0f, 1.0f}});

  Add(8, "stripes", StripesSource,
      {{"freq", 8.0f, 1.0f, 24.0f},
       {"angle", 0.6f, 0.0f, 3.14f},
       {"width", 0.5f, 0.1f, 0.9f},
       {"fuzz", 0.08f, 0.01f, 0.3f},
       {"ka", 0.2f, 0.0f, 0.6f},
       {"kd", 0.7f, 0.1f, 1.0f},
       {"ks", 0.3f, 0.0f, 1.0f},
       {"roughness", 0.15f, 0.02f, 0.5f},
       {"lightx", 2.0f, -4.0f, 4.0f},
       {"lighty", 3.0f, -4.0f, 4.0f},
       {"lightz", 4.0f, 1.0f, 8.0f},
       {"r1", 0.9f, 0.0f, 1.0f},
       {"g1", 0.8f, 0.0f, 1.0f},
       {"b1", 0.3f, 0.0f, 1.0f}});

  Add(9, "clouds", CloudsSource,
      {{"scale1", 3.0f, 0.5f, 8.0f},
       {"scale2", 7.0f, 2.0f, 16.0f},
       {"offsetx", 0.0f, -4.0f, 4.0f},
       {"offsety", 0.0f, -4.0f, 4.0f},
       {"density", 0.55f, 0.1f, 0.95f},
       {"sharpness", 0.25f, 0.05f, 0.6f},
       {"sunx", 0.4f, -1.0f, 1.0f},
       {"suny", 0.7f, 0.1f, 1.0f},
       {"sunz", 0.6f, 0.1f, 1.0f},
       {"sunr", 1.0f, 0.5f, 1.2f},
       {"sung", 0.9f, 0.4f, 1.1f},
       {"sunb", 0.7f, 0.2f, 1.0f},
       {"skyr", 0.3f, 0.0f, 0.8f},
       {"skyg", 0.5f, 0.1f, 0.9f},
       {"skyb", 0.85f, 0.3f, 1.0f},
       {"haze", 0.3f, 0.0f, 1.0f}});

  Add(10, "rings", RingsSource,
      {{"redl", 1.0f, 0.2f, 1.2f},
       {"greenl", 0.95f, 0.2f, 1.2f},
       {"bluel", 0.85f, 0.2f, 1.2f},
       {"ringscale", 5.0f, 1.0f, 14.0f},
       {"roughness", 0.12f, 0.02f, 0.5f},
       {"ks", 0.35f, 0.0f, 1.0f},
       {"kd", 0.7f, 0.1f, 1.0f},
       {"ambient", 0.2f, 0.0f, 0.6f},
       {"lightx", 2.0f, -4.0f, 4.0f},
       {"lighty", 3.0f, -4.0f, 4.0f},
       {"lightz", 4.0f, 1.0f, 8.0f},
       {"grain", 0.6f, 0.0f, 2.0f},
       {"squish", 1.5f, 0.5f, 4.0f},
       {"txtscale", 2.0f, 0.5f, 6.0f}});

  return Gallery;
}

const std::vector<ShaderInfo> &dspec::shaderGallery() {
  static const std::vector<ShaderInfo> Gallery = makeGallery();
  return Gallery;
}

const ShaderInfo *dspec::findShader(const std::string &Name) {
  for (const ShaderInfo &Info : shaderGallery())
    if (Info.Name == Name)
      return &Info;
  return nullptr;
}

unsigned dspec::totalPartitionCount() {
  unsigned Count = 0;
  for (const ShaderInfo &Info : shaderGallery())
    Count += static_cast<unsigned>(Info.Controls.size());
  return Count;
}
