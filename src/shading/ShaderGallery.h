//===- shading/ShaderGallery.h - The ten benchmark shaders ------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gallery of ten shading procedures used by the Section 5 experiments.
/// Mirroring the paper: they range from simple non-iterative lighting
/// models (shaders 1, 6, 7, 8) to procedural-texture shaders invoking
/// expensive fractal noise (shaders 3, 4, 5), span roughly 50-150 lines of
/// dsc each, call the vector/noise math library, and expose about a dozen
/// user-facing control parameters each. One input partition per control
/// parameter yields the paper's 131 partitions. Shader 10 ("rings", 14
/// parameters) is the subject of the Figure 9/10 cache-limiting study.
///
/// Every shader has the signature
///   vec3 <name>(vec2 uv, vec3 P, vec3 N, vec3 I, <controls...>)
/// where the first four parameters are the fixed per-pixel inputs from
/// RenderContext and every control is a float.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SHADING_SHADERGALLERY_H
#define DATASPEC_SHADING_SHADERGALLERY_H

#include <string>
#include <vector>

namespace dspec {

/// One user-facing control parameter of a shader.
struct ControlParam {
  std::string Name;
  float Default;
  /// Range the benchmarks sweep when this parameter varies.
  float SweepMin;
  float SweepMax;
};

/// One gallery shader.
struct ShaderInfo {
  /// 1-based index as used in the paper's figures.
  unsigned Index;
  std::string Name;
  /// dsc source text; defines one function named \c Name.
  std::string Source;
  std::vector<ControlParam> Controls;

  /// Number of standard (per-pixel) parameters preceding the controls.
  static constexpr unsigned NumPixelParams = 4;
};

/// The ten shaders, in paper order. Total control-parameter count across
/// the gallery is 131, matching the paper's partition count.
const std::vector<ShaderInfo> &shaderGallery();

/// Finds a gallery shader by name; returns null if absent.
const ShaderInfo *findShader(const std::string &Name);

/// Sum of control counts over the gallery (the number of distinct input
/// partitions the Figure 7 experiment measures).
unsigned totalPartitionCount();

} // namespace dspec

#endif // DATASPEC_SHADING_SHADERGALLERY_H
