//===- shading/ShaderLab.h - Section 5 measurement driver -------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the paper's Section 5 experiments for one gallery shader and
/// one input partition: compile the original, specialize on "everything
/// fixed except one control parameter", fill the per-pixel cache array
/// with the loader, then time original vs. reader frames while sweeping
/// the varying parameter (simulating the user dragging one slider in the
/// [GKR95] interface). Also computes the paper's per-partition metrics:
/// asymptotic speedup (Figure 7), single-pixel cache bytes (Figure 8),
/// and the break-even use count (Section 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SHADING_SHADERLAB_H
#define DATASPEC_SHADING_SHADERLAB_H

#include "driver/Pipeline.h"
#include "engine/CacheArena.h"
#include "engine/RenderContext.h"
#include "engine/RenderEngine.h"
#include "shading/ShaderGallery.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dspec {

/// The Section 5 metrics for one (shader, varying-parameter) pair.
struct PartitionReport {
  unsigned ShaderIndex = 0;
  std::string ShaderName;
  std::string ParamName;
  /// Asymptotic per-frame speedup: T(original) / T(reader). Figure 7.
  double Speedup = 0.0;
  /// Single-pixel cache bytes. Figure 8.
  unsigned CacheBytes = 0;
  unsigned CacheSlots = 0;
  /// Minimum number of uses k with loadT + (k-1)*readT <= k*origT
  /// (Section 5.2; capped at BreakevenCap when the reader never wins).
  unsigned BreakevenUses = 0;
  /// Loader-frame cost relative to an original frame.
  double LoaderOverhead = 0.0;
  /// Raw per-frame timings in seconds.
  double OriginalSeconds = 0.0;
  double LoaderSeconds = 0.0;
  double ReaderSeconds = 0.0;

  static constexpr unsigned BreakevenCap = 1000;
};

/// A compiled (shader, partition) specialization bound to a pixel grid,
/// with one packed CacheArena holding every pixel's cache. Reusable
/// across frames; all passes run on a RenderEngine.
class SpecializedShader {
public:
  SpecializedShader(CompiledSpecialization Compiled, const ShaderInfo &Info,
                    size_t VaryingIndex);

  /// Runs the loader over every pixel (the early phase), filling the
  /// grid's packed cache arena. \p Controls must contain one value per
  /// control parameter. Returns false on any trap.
  bool load(RenderEngine &Engine, const RenderGrid &Grid,
            const std::vector<float> &Controls, Framebuffer *Out = nullptr);

  /// Runs the reader over every pixel. The arena must have been loaded
  /// with identical fixed inputs (only the varying control may differ).
  bool readFrame(RenderEngine &Engine, const RenderGrid &Grid,
                 const std::vector<float> &Controls,
                 Framebuffer *Out = nullptr);

  /// Runs the *original* program over every pixel (baseline).
  bool originalFrame(RenderEngine &Engine, const RenderGrid &Grid,
                     const std::vector<float> &Controls,
                     Framebuffer *Out = nullptr);

  const CompiledSpecialization &compiled() const { return Compiled; }
  size_t varyingIndex() const { return VaryingIndex; }

  /// The packed per-pixel cache storage (for inspection in tests).
  const CacheArena &arena() const { return Arena; }

  /// One pixel's cache decoded into boxed values (test/debug aid).
  std::vector<Value> cacheValuesAt(unsigned Pixel) const {
    return Arena.decode(Pixel);
  }

private:
  CompiledSpecialization Compiled;
  const ShaderInfo &Info;
  size_t VaryingIndex;
  CacheArena Arena;
};

/// Top-level experiment driver. Owns the pixel grid and parsed shaders.
class ShaderLab {
public:
  /// \p Width x \p Height pixels per frame; \p FramesPerMeasurement
  /// frames are timed per phase and the *median* frame time is used.
  /// \p Threads sizes the lab's render engine; the default of 1 keeps the
  /// paper's per-frame measurements serial and comparable.
  ShaderLab(unsigned Width = 48, unsigned Height = 32,
            unsigned FramesPerMeasurement = 5, unsigned Threads = 1);

  /// Parses and prepares a gallery shader (cached across calls).
  /// Returns false (and records the message) when the shader does not
  /// compile — which would be a bug, exercised by tests.
  bool prepare(const ShaderInfo &Info);

  /// Builds the specialization for one partition.
  std::optional<SpecializedShader>
  specializePartition(const ShaderInfo &Info, size_t VaryingIndex,
                      const SpecializerOptions &Options = {});

  /// Runs the full measurement for one partition.
  std::optional<PartitionReport>
  measurePartition(const ShaderInfo &Info, size_t VaryingIndex,
                   const SpecializerOptions &Options = {});

  /// Runs every partition of every gallery shader (the Figure 7 / 8 /
  /// Section 5.2 sweep).
  std::vector<PartitionReport>
  measureAllPartitions(const SpecializerOptions &Options = {});

  const RenderGrid &grid() const { return Grid; }
  RenderEngine &engine() { return Engine; }
  const std::string &lastError() const { return LastError; }

  /// Sweep values used for the varying control across frames.
  std::vector<float> sweepValues(const ControlParam &Param,
                                 unsigned Count) const;

  /// Default control vector of a shader.
  static std::vector<float> defaultControls(const ShaderInfo &Info);

private:
  CompilationUnit *unitFor(const ShaderInfo &Info);

  RenderGrid Grid;
  RenderEngine Engine;
  unsigned FramesPerMeasurement;
  std::string LastError;
  std::vector<std::pair<std::string, std::unique_ptr<CompilationUnit>>> Units;
};

} // namespace dspec

#endif // DATASPEC_SHADING_SHADERLAB_H
