//===- transform/Reassociate.cpp - Section 4.2 reassociation ---------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Reassociate.h"

#include "lang/ASTWalk.h"
#include "support/Casting.h"

#include <algorithm>
#include <vector>

using namespace dspec;

namespace {

class ReassociateImpl {
public:
  ReassociateImpl(ASTContext &Ctx, const DependenceAnalysis &Dep,
                  ReassociateOptions Options)
      : Ctx(Ctx), Dep(Dep), Options(Options) {}

  unsigned ChainsChanged = 0;

  /// True if \p E may head (or extend) a reassociable chain of \p Op with
  /// element type \p ChainType.
  bool isChainable(Type ChainType) const {
    if (!ChainType.isNumericScalar())
      return false;
    if (ChainType.isFloat() && !Options.AllowFloatReassociation)
      return false;
    return true;
  }

  /// Collects the leaves of the maximal same-op, same-type chain under
  /// \p E (left-to-right source order).
  void flatten(Expr *E, BinaryOp Op, Type ChainType,
               std::vector<Expr *> &Leaves) {
    if (auto *B = dyn_cast<BinaryExpr>(E)) {
      if (B->op() == Op && B->type() == ChainType &&
          B->lhs()->type() == ChainType && B->rhs()->type() == ChainType) {
        flatten(B->lhs(), Op, ChainType, Leaves);
        flatten(B->rhs(), Op, ChainType, Leaves);
        return;
      }
    }
    Leaves.push_back(E);
  }

  /// Rebuilds \p Leaves as a left-associated chain.
  Expr *rebuild(const std::vector<Expr *> &Leaves, BinaryOp Op,
                Type ChainType, SourceLoc Loc) {
    Expr *Acc = Leaves.front();
    for (size_t I = 1; I < Leaves.size(); ++I) {
      auto *NewNode = Ctx.create<BinaryExpr>(Op, Acc, Leaves[I], Loc);
      NewNode->setType(ChainType);
      Acc = NewNode;
    }
    return Acc;
  }

  Expr *visit(Expr *E) {
    // Reassociate children first so inner chains are already canonical.
    rewriteChildren(E);

    auto *B = dyn_cast<BinaryExpr>(E);
    if (!B || !isAssociativeOp(B->op()) || !isChainable(B->type()))
      return E;

    std::vector<Expr *> Leaves;
    flatten(B, B->op(), B->type(), Leaves);
    if (Leaves.size() < 3)
      return E;

    // Stable partition: independent leaves first. This both groups the
    // independent computation and leaves relative source order intact.
    std::vector<Expr *> Ordered = Leaves;
    std::stable_partition(Ordered.begin(), Ordered.end(), [&](Expr *Leaf) {
      return !Dep.isDependent(Leaf);
    });
    if (Ordered == Leaves)
      return E;

    ++ChainsChanged;
    return rebuild(Ordered, B->op(), B->type(), B->loc());
  }

  void rewriteChildren(Expr *E) {
    switch (E->kind()) {
    case ExprKind::EK_Unary: {
      auto *U = cast<UnaryExpr>(E);
      U->setOperand(visit(U->operand()));
      return;
    }
    case ExprKind::EK_Binary: {
      auto *B = cast<BinaryExpr>(E);
      B->setLHS(visit(B->lhs()));
      B->setRHS(visit(B->rhs()));
      return;
    }
    case ExprKind::EK_Cond: {
      auto *C = cast<CondExpr>(E);
      C->setCond(visit(C->cond()));
      C->setTrueExpr(visit(C->trueExpr()));
      C->setFalseExpr(visit(C->falseExpr()));
      return;
    }
    case ExprKind::EK_Call: {
      auto *Call = cast<CallExpr>(E);
      for (Expr *&Arg : Call->args())
        Arg = visit(Arg);
      return;
    }
    case ExprKind::EK_Member: {
      auto *M = cast<MemberExpr>(E);
      M->setBase(visit(M->base()));
      return;
    }
    default:
      return;
    }
  }

  void run(Function *F) {
    walkStmts(F->body(), [&](Stmt *S) {
      switch (S->kind()) {
      case StmtKind::SK_Decl: {
        auto *Decl = cast<DeclStmt>(S);
        if (Decl->init())
          Decl->setInit(visit(Decl->init()));
        return;
      }
      case StmtKind::SK_Assign: {
        auto *Assign = cast<AssignStmt>(S);
        Assign->setValue(visit(Assign->value()));
        return;
      }
      case StmtKind::SK_ExprStmt: {
        auto *ES = cast<ExprStmt>(S);
        ES->setExpr(visit(ES->expr()));
        return;
      }
      case StmtKind::SK_If: {
        auto *If = cast<IfStmt>(S);
        If->setCond(visit(If->cond()));
        return;
      }
      case StmtKind::SK_While: {
        auto *While = cast<WhileStmt>(S);
        While->setCond(visit(While->cond()));
        return;
      }
      case StmtKind::SK_Return: {
        auto *Ret = cast<ReturnStmt>(S);
        if (Ret->value())
          Ret->setValue(visit(Ret->value()));
        return;
      }
      case StmtKind::SK_Block:
        return;
      }
    });
  }

private:
  ASTContext &Ctx;
  const DependenceAnalysis &Dep;
  ReassociateOptions Options;
};

} // namespace

unsigned dspec::reassociate(Function *F, ASTContext &Ctx,
                            const DependenceAnalysis &Dep,
                            ReassociateOptions Options) {
  ReassociateImpl Impl(Ctx, Dep, Options);
  Impl.run(F);
  return Impl.ChainsChanged;
}
