//===- transform/ConstantFold.h - Property-pin constant folding -*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The property-abstraction fold used by polyvariant specialization: given
/// a set of parameter pins (parameter-is-zero / parameter-is-one), rewrite
/// a fragment in place so every reference to a pinned parameter becomes a
/// literal, then fold literal subterms and settle branches whose condition
/// folds to a constant.
///
/// The pass is deliberately conservative so the folded fragment stays
/// bit-identical to the original on admissible inputs (inputs where each
/// pinned parameter equals its pin value):
///
///  - Only literal (op) literal is folded, computed with exactly the C++
///    float/int semantics of vm/InterpOps.h. No algebraic identities —
///    `x + 0` and `1 * x` are left alone (they are exact in IEEE-754 for
///    most inputs but not for NaN payloads / signed zeros, and the VM
///    would have executed the op).
///  - Integer division/modulo by a literal zero is never folded; the VM
///    traps on it and the fold must preserve that trap.
///  - `&&`, `||`, and `?:` are strict in dsc (both sides always
///    evaluate), so a fold that would discard an operand is only applied
///    when the discarded operand is free of calls, integer `/` `%`, and
///    cache accesses — i.e. when skipping its evaluation is unobservable.
///  - `if`/`while` compile to real control flow, so pruning a branch
///    whose condition folds to a literal matches the VM exactly: the VM
///    would not have executed the dead branch either.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_TRANSFORM_CONSTANTFOLD_H
#define DATASPEC_TRANSFORM_CONSTANTFOLD_H

#include "lang/ASTContext.h"

#include <utility>
#include <vector>

namespace dspec {

/// Counters describing one fold run.
struct ConstantFoldStats {
  /// Pinned-parameter references replaced by literals.
  unsigned SubstitutedRefs = 0;
  /// Literal subterms folded into a single literal (including settled
  /// strict operators).
  unsigned FoldedExprs = 0;
  /// `if`/`while` statements whose condition folded to a literal and
  /// whose dead branch was pruned.
  unsigned SettledBranches = 0;
};

/// Rewrites \p F in place, substituting each pinned parameter with its
/// literal value and folding what settles. Pins whose parameter is ever
/// reassigned inside the fragment are skipped (the parameter is still a
/// fixed input, just not substitutable). Safe to run before Sema-dependent
/// analyses; new nodes are created through \p Ctx and carry types.
ConstantFoldStats
constantFoldWithPins(Function *F, ASTContext &Ctx,
                     const std::vector<std::pair<VarDecl *, float>> &Pins);

} // namespace dspec

#endif // DATASPEC_TRANSFORM_CONSTANTFOLD_H
