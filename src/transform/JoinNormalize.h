//===- transform/JoinNormalize.h - Section 4.1 SSA-style copies -*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 4.1 preprocessing transform: after every control construct
/// (if/while), insert a copy `v = v` for each variable that may have been
/// modified inside the construct and is declared outside it. These copies
/// are the analog of SSA phi nodes; they give the program unique
/// definitions at join points. The caching analysis then only allows
/// caching a bare variable reference when it is the right-hand side of
/// such a phi copy, which collapses what would otherwise be several
/// redundant cache slots (paper Figures 4-6) into one.
///
/// The transform mutates the function in place (the specializer runs it on
/// a private clone) and requires a resolved (post-Sema) AST; inserted
/// nodes are created fully resolved.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_TRANSFORM_JOINNORMALIZE_H
#define DATASPEC_TRANSFORM_JOINNORMALIZE_H

#include "lang/ASTContext.h"

namespace dspec {

/// Runs the transform on \p F. Returns the number of phi copies inserted.
unsigned joinNormalize(Function *F, ASTContext &Ctx);

} // namespace dspec

#endif // DATASPEC_TRANSFORM_JOINNORMALIZE_H
