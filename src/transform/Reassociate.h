//===- transform/Reassociate.h - Section 4.2 reassociation ------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 4.2 binding-time improvement: chains of the associative
/// operators `+` and `*` are flattened and reordered so that operands
/// independent of the varying inputs group together on the left. This
/// maximizes the size of the independent subterm the caching analysis can
/// place in the loader (e.g. with x1, x2 varying,
/// `x1*x2 + y1*y2 + z1*z2` becomes `y1*y2 + z1*z2 + x1*x2`, letting the
/// first addition be cached).
///
/// As the paper's footnote 2 notes, floating-point arithmetic is not truly
/// associative; reassociating float chains is therefore opt-in.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_TRANSFORM_REASSOCIATE_H
#define DATASPEC_TRANSFORM_REASSOCIATE_H

#include "analysis/DependenceAnalysis.h"
#include "lang/ASTContext.h"

namespace dspec {

/// Controls which chains may be rebuilt.
struct ReassociateOptions {
  /// Permit reordering float chains (changes rounding, see above).
  bool AllowFloatReassociation = true;
};

/// Runs the transform on \p F in place, consulting \p Dep for operand
/// dependence. Returns the number of chains whose operand order changed.
unsigned reassociate(Function *F, ASTContext &Ctx,
                     const DependenceAnalysis &Dep,
                     ReassociateOptions Options = {});

} // namespace dspec

#endif // DATASPEC_TRANSFORM_REASSOCIATE_H
