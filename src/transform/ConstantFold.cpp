//===- transform/ConstantFold.cpp - Property-pin constant folding ----------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/ConstantFold.h"

#include "lang/ASTWalk.h"
#include "lang/Function.h"
#include "lang/Stmt.h"
#include "support/Casting.h"

#include <unordered_map>
#include <unordered_set>

using namespace dspec;

namespace {

/// The in-place rewriter. Expressions are folded bottom-up; statements are
/// folded in order, with `if`/`while` pruned when their condition settles.
class Folder {
public:
  Folder(ASTContext &Ctx, std::unordered_map<const VarDecl *, float> Pins,
         ConstantFoldStats &Stats)
      : Ctx(Ctx), Pins(std::move(Pins)), Stats(Stats) {}

  void run(Function *F) {
    BlockStmt *Body = F->body();
    if (!Body)
      return;
    foldBlock(Body);
  }

private:
  ASTContext &Ctx;
  std::unordered_map<const VarDecl *, float> Pins;
  ConstantFoldStats &Stats;

  //===--------------------------------------------------------------------===//
  // Safety predicate for strict-operator folds.
  //===--------------------------------------------------------------------===//

  /// True if skipping the evaluation of \p E is unobservable: no calls
  /// (effects, noise tables, instruction-count-heavy builtins), no integer
  /// `/` `%` (VM traps on a zero divisor), no cache accesses.
  static bool isDiscardSafe(const Expr *E) {
    if (isa<CallExpr, CacheReadExpr, CacheStoreExpr>(E))
      return false;
    if (const auto *B = dyn_cast<BinaryExpr>(E))
      if ((B->op() == BinaryOp::BO_Div || B->op() == BinaryOp::BO_Mod) &&
          !B->lhs()->type().isFloat() && !B->rhs()->type().isFloat())
        return false;
    bool Safe = true;
    forEachChildExpr(const_cast<Expr *>(E), [&](Expr *Child) {
      if (!isDiscardSafe(Child))
        Safe = false;
    });
    return Safe;
  }

  //===--------------------------------------------------------------------===//
  // Literal helpers.
  //===--------------------------------------------------------------------===//

  Expr *makeFloat(float V, SourceLoc Loc) {
    auto *E = Ctx.create<FloatLiteralExpr>(V, Loc);
    E->setType(Type::floatTy());
    return E;
  }

  Expr *makeInt(int32_t V, SourceLoc Loc) {
    auto *E = Ctx.create<IntLiteralExpr>(V, Loc);
    E->setType(Type::intTy());
    return E;
  }

  Expr *makeBool(bool V, SourceLoc Loc) {
    auto *E = Ctx.create<BoolLiteralExpr>(V, Loc);
    E->setType(Type::boolTy());
    return E;
  }

  /// Extracts a float operand value, applying the VM's int->float
  /// conversion (OC_Convert does static_cast<float>).
  static bool asFloatLit(const Expr *E, float &Out) {
    if (const auto *F = dyn_cast<FloatLiteralExpr>(E)) {
      Out = F->value();
      return true;
    }
    if (const auto *I = dyn_cast<IntLiteralExpr>(E)) {
      Out = static_cast<float>(I->value());
      return true;
    }
    return false;
  }

  static bool asBoolLit(const Expr *E, bool &Out) {
    if (const auto *B = dyn_cast<BoolLiteralExpr>(E)) {
      Out = B->value();
      return true;
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Expression folding.
  //===--------------------------------------------------------------------===//

  Expr *foldExpr(Expr *E) {
    switch (E->kind()) {
    case ExprKind::EK_IntLiteral:
    case ExprKind::EK_FloatLiteral:
    case ExprKind::EK_BoolLiteral:
    case ExprKind::EK_CacheRead:
      return E;
    case ExprKind::EK_VarRef: {
      auto *Ref = cast<VarRefExpr>(E);
      auto It = Pins.find(Ref->decl());
      if (It == Pins.end())
        return E;
      ++Stats.SubstitutedRefs;
      return makeFloat(It->second, E->loc());
    }
    case ExprKind::EK_Unary: {
      auto *U = cast<UnaryExpr>(E);
      U->setOperand(foldExpr(U->operand()));
      return foldUnary(U);
    }
    case ExprKind::EK_Binary: {
      auto *B = cast<BinaryExpr>(E);
      B->setLHS(foldExpr(B->lhs()));
      B->setRHS(foldExpr(B->rhs()));
      return foldBinary(B);
    }
    case ExprKind::EK_Cond: {
      auto *C = cast<CondExpr>(E);
      C->setCond(foldExpr(C->cond()));
      C->setTrueExpr(foldExpr(C->trueExpr()));
      C->setFalseExpr(foldExpr(C->falseExpr()));
      bool CondVal;
      if (!asBoolLit(C->cond(), CondVal))
        return C;
      // `?:` is strict: the unselected operand would still have been
      // evaluated, so only drop it when that evaluation is unobservable.
      Expr *Kept = CondVal ? C->trueExpr() : C->falseExpr();
      Expr *Dropped = CondVal ? C->falseExpr() : C->trueExpr();
      if (!isDiscardSafe(Dropped))
        return C;
      ++Stats.FoldedExprs;
      return Kept;
    }
    case ExprKind::EK_Call: {
      auto *Call = cast<CallExpr>(E);
      for (Expr *&Arg : Call->args())
        Arg = foldExpr(Arg);
      return Call;
    }
    case ExprKind::EK_Member: {
      auto *M = cast<MemberExpr>(E);
      M->setBase(foldExpr(M->base()));
      return M;
    }
    case ExprKind::EK_CacheStore: {
      auto *S = cast<CacheStoreExpr>(E);
      S->setOperand(foldExpr(S->operand()));
      return S;
    }
    }
    return E;
  }

  Expr *foldUnary(UnaryExpr *U) {
    Expr *Op = U->operand();
    if (U->op() == UnaryOp::UO_Neg) {
      if (const auto *I = dyn_cast<IntLiteralExpr>(Op)) {
        ++Stats.FoldedExprs;
        return makeInt(-I->value(), U->loc());
      }
      if (const auto *F = dyn_cast<FloatLiteralExpr>(Op)) {
        ++Stats.FoldedExprs;
        return makeFloat(-F->value(), U->loc());
      }
      return U;
    }
    bool B;
    if (U->op() == UnaryOp::UO_Not && asBoolLit(Op, B)) {
      ++Stats.FoldedExprs;
      return makeBool(!B, U->loc());
    }
    return U;
  }

  Expr *foldBinary(BinaryExpr *B) {
    Expr *L = B->lhs();
    Expr *R = B->rhs();
    const SourceLoc Loc = B->loc();

    // Logical operators: bool operands only.
    if (B->op() == BinaryOp::BO_And || B->op() == BinaryOp::BO_Or) {
      bool LV, RV;
      bool HasL = asBoolLit(L, LV), HasR = asBoolLit(R, RV);
      if (HasL && HasR) {
        ++Stats.FoldedExprs;
        return makeBool(B->op() == BinaryOp::BO_And ? (LV && RV) : (LV || RV),
                        Loc);
      }
      // One literal operand. The identity element folds to the other
      // operand (it is evaluated either way, so this is always safe);
      // the absorbing element may only drop the other operand when its
      // evaluation is unobservable.
      bool LitVal = HasL ? LV : RV;
      Expr *Other = HasL ? R : L;
      if (!HasL && !HasR)
        return B;
      if (B->op() == BinaryOp::BO_And) {
        if (LitVal) { // true && x == x
          ++Stats.FoldedExprs;
          return Other;
        }
        if (isDiscardSafe(Other)) { // false && x == false
          ++Stats.FoldedExprs;
          return makeBool(false, Loc);
        }
        return B;
      }
      if (!LitVal) { // false || x == x
        ++Stats.FoldedExprs;
        return Other;
      }
      if (isDiscardSafe(Other)) { // true || x == true
        ++Stats.FoldedExprs;
        return makeBool(true, Loc);
      }
      return B;
    }

    // Bool equality (the VM compares the raw flags).
    bool LB, RB;
    if ((B->op() == BinaryOp::BO_Eq || B->op() == BinaryOp::BO_Ne) &&
        asBoolLit(L, LB) && asBoolLit(R, RB)) {
      ++Stats.FoldedExprs;
      return makeBool(B->op() == BinaryOp::BO_Eq ? (LB == RB) : (LB != RB),
                      Loc);
    }

    const auto *LI = dyn_cast<IntLiteralExpr>(L);
    const auto *RI = dyn_cast<IntLiteralExpr>(R);

    // Pure integer arithmetic — exactly the IOp lambdas of InterpOps.h.
    // Division/modulo by a literal zero traps in the VM; leave it alone.
    if (LI && RI) {
      int32_t A = LI->value(), C = RI->value();
      switch (B->op()) {
      case BinaryOp::BO_Add:
        ++Stats.FoldedExprs;
        return makeInt(A + C, Loc);
      case BinaryOp::BO_Sub:
        ++Stats.FoldedExprs;
        return makeInt(A - C, Loc);
      case BinaryOp::BO_Mul:
        ++Stats.FoldedExprs;
        return makeInt(A * C, Loc);
      case BinaryOp::BO_Div:
        if (C == 0)
          return B;
        ++Stats.FoldedExprs;
        return makeInt(A / C, Loc);
      case BinaryOp::BO_Mod:
        if (C == 0)
          return B;
        ++Stats.FoldedExprs;
        return makeInt(A % C, Loc);
      default:
        break; // comparisons handled below (as floats, per interp::compare)
      }
    }

    float LF, RF;
    if (!asFloatLit(L, LF) || !asFloatLit(R, RF))
      return B;

    // Comparisons convert both sides to float, mirroring interp::compare.
    switch (B->op()) {
    case BinaryOp::BO_Lt:
      ++Stats.FoldedExprs;
      return makeBool(LF < RF, Loc);
    case BinaryOp::BO_Le:
      ++Stats.FoldedExprs;
      return makeBool(LF <= RF, Loc);
    case BinaryOp::BO_Gt:
      ++Stats.FoldedExprs;
      return makeBool(LF > RF, Loc);
    case BinaryOp::BO_Ge:
      ++Stats.FoldedExprs;
      return makeBool(LF >= RF, Loc);
    case BinaryOp::BO_Eq:
      ++Stats.FoldedExprs;
      return makeBool(LF == RF, Loc);
    case BinaryOp::BO_Ne:
      ++Stats.FoldedExprs;
      return makeBool(LF != RF, Loc);
    default:
      break;
    }

    // Mixed or float arithmetic: only when the result type is float (the
    // compiler would have converted the int operand first), computed with
    // exactly the FOp lambdas of InterpOps.h.
    if (LI && RI)
      return B;
    if (!B->type().isFloat())
      return B;
    switch (B->op()) {
    case BinaryOp::BO_Add:
      ++Stats.FoldedExprs;
      return makeFloat(LF + RF, Loc);
    case BinaryOp::BO_Sub:
      ++Stats.FoldedExprs;
      return makeFloat(LF - RF, Loc);
    case BinaryOp::BO_Mul:
      ++Stats.FoldedExprs;
      return makeFloat(LF * RF, Loc);
    case BinaryOp::BO_Div:
      ++Stats.FoldedExprs;
      return makeFloat(LF / RF, Loc);
    default:
      return B;
    }
  }

  //===--------------------------------------------------------------------===//
  // Statement folding.
  //===--------------------------------------------------------------------===//

  /// Folds one statement; returns the replacement, or null to drop it.
  Stmt *foldStmt(Stmt *S) {
    switch (S->kind()) {
    case StmtKind::SK_Block:
      foldBlock(cast<BlockStmt>(S));
      return S;
    case StmtKind::SK_Decl: {
      auto *D = cast<DeclStmt>(S);
      if (D->init())
        D->setInit(foldExpr(D->init()));
      return S;
    }
    case StmtKind::SK_Assign: {
      auto *A = cast<AssignStmt>(S);
      A->setValue(foldExpr(A->value()));
      return S;
    }
    case StmtKind::SK_ExprStmt: {
      auto *E = cast<ExprStmt>(S);
      E->setExpr(foldExpr(E->expr()));
      return S;
    }
    case StmtKind::SK_If: {
      auto *If = cast<IfStmt>(S);
      If->setCond(foldExpr(If->cond()));
      bool CondVal;
      if (!asBoolLit(If->cond(), CondVal)) {
        If->setThenStmt(foldStmt(If->thenStmt()));
        if (If->elseStmt())
          If->setElseStmt(foldStmt(If->elseStmt()));
        return If;
      }
      // The settled branch replaces the whole statement; the VM would not
      // have executed the other branch, so pruning it is exact.
      ++Stats.SettledBranches;
      Stmt *Taken = CondVal ? If->thenStmt() : If->elseStmt();
      return Taken ? foldStmt(Taken) : nullptr;
    }
    case StmtKind::SK_While: {
      auto *W = cast<WhileStmt>(S);
      W->setCond(foldExpr(W->cond()));
      bool CondVal;
      if (asBoolLit(W->cond(), CondVal) && !CondVal) {
        // A statically false loop never runs its body.
        ++Stats.SettledBranches;
        return nullptr;
      }
      W->setBody(foldStmt(W->body()));
      return W;
    }
    case StmtKind::SK_Return: {
      auto *R = cast<ReturnStmt>(S);
      if (R->value())
        R->setValue(foldExpr(R->value()));
      return S;
    }
    }
    return S;
  }

  void foldBlock(BlockStmt *Block) {
    std::vector<Stmt *> NewBody;
    NewBody.reserve(Block->body().size());
    for (Stmt *S : Block->body())
      if (Stmt *Folded = foldStmt(S))
        NewBody.push_back(Folded);
    Block->body() = std::move(NewBody);
  }
};

} // namespace

ConstantFoldStats dspec::constantFoldWithPins(
    Function *F, ASTContext &Ctx,
    const std::vector<std::pair<VarDecl *, float>> &Pins) {
  ConstantFoldStats Stats;
  if (Pins.empty() || !F->body())
    return Stats;

  // A parameter that is reassigned inside the fragment is still a fixed
  // input, but its references past the assignment no longer equal the pin
  // value; skip substituting such pins entirely.
  std::unordered_set<const VarDecl *> Reassigned;
  walkStmts(F->body(), [&](Stmt *S) {
    if (auto *A = dyn_cast<AssignStmt>(S))
      if (A->target())
        Reassigned.insert(A->target());
  });

  std::unordered_map<const VarDecl *, float> PinMap;
  for (const auto &[Decl, Value] : Pins)
    if (Decl && !Reassigned.count(Decl) && Decl->type().isFloat())
      PinMap.emplace(Decl, Value);
  if (PinMap.empty())
    return Stats;

  Folder(Ctx, std::move(PinMap), Stats).run(F);
  return Stats;
}
