//===- transform/JoinNormalize.cpp - Section 4.1 SSA-style copies ----------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/JoinNormalize.h"

#include "lang/ASTWalk.h"
#include "support/Casting.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

using namespace dspec;

namespace {

/// Collects, in source order, the variables assigned anywhere inside \p S
/// that are declared outside \p S (those are the variables whose value is
/// merged at the join point after \p S).
std::vector<VarDecl *> outerAssignedVars(Stmt *S) {
  std::vector<VarDecl *> Assigned;
  std::unordered_set<VarDecl *> DeclaredInside;
  walkStmts(S, [&](Stmt *Sub) {
    if (auto *Decl = dyn_cast<DeclStmt>(Sub)) {
      DeclaredInside.insert(Decl->var());
      return;
    }
    if (auto *Assign = dyn_cast<AssignStmt>(Sub)) {
      assert(Assign->target() && "join normalization requires resolved AST");
      Assigned.push_back(Assign->target());
    }
  });

  std::vector<VarDecl *> Result;
  for (VarDecl *Var : Assigned) {
    if (DeclaredInside.count(Var))
      continue;
    if (std::find(Result.begin(), Result.end(), Var) != Result.end())
      continue;
    Result.push_back(Var);
  }
  return Result;
}

class NormalizeImpl {
public:
  NormalizeImpl(ASTContext &Ctx) : Ctx(Ctx) {}

  unsigned Inserted = 0;

  AssignStmt *makePhiCopy(VarDecl *Var, SourceLoc Loc) {
    auto *Ref = Ctx.create<VarRefExpr>(Var->name(), Loc);
    Ref->setDecl(Var);
    Ref->setType(Var->type());
    auto *Phi = Ctx.create<AssignStmt>(Var->name(), Ref, Loc);
    Phi->setTarget(Var);
    Phi->setPhiCopy(true);
    ++Inserted;
    return Phi;
  }

  void processStmt(Stmt *S) {
    switch (S->kind()) {
    case StmtKind::SK_Block:
      processBlock(cast<BlockStmt>(S));
      return;
    case StmtKind::SK_If: {
      auto *If = cast<IfStmt>(S);
      processStmt(If->thenStmt());
      if (If->elseStmt())
        processStmt(If->elseStmt());
      return;
    }
    case StmtKind::SK_While:
      processStmt(cast<WhileStmt>(S)->body());
      return;
    default:
      return;
    }
  }

  void processBlock(BlockStmt *Block) {
    std::vector<Stmt *> NewBody;
    NewBody.reserve(Block->body().size());
    for (Stmt *Child : Block->body()) {
      processStmt(Child);
      NewBody.push_back(Child);
      if (!isa<IfStmt>(Child) && !isa<WhileStmt>(Child))
        continue;
      // This is a join point: the paths through the construct merge here.
      for (VarDecl *Var : outerAssignedVars(Child))
        NewBody.push_back(makePhiCopy(Var, Child->loc()));
    }
    Block->body() = std::move(NewBody);
  }

private:
  ASTContext &Ctx;
};

} // namespace

unsigned dspec::joinNormalize(Function *F, ASTContext &Ctx) {
  NormalizeImpl Impl(Ctx);
  Impl.processBlock(F->body());
  return Impl.Inserted;
}
