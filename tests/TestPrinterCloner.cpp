//===- tests/TestPrinterCloner.cpp - Printer and cloner tests -----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "lang/ASTCloner.h"
#include "lang/ASTPrinter.h"
#include "lang/ASTWalk.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "support/Casting.h"
#include "vm/BytecodeCompiler.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <set>

using namespace dspec;

namespace {

/// Parses, prints, re-parses, re-prints: the two printed forms must agree
/// (print/parse round-trip stability).
void expectRoundTrip(const std::string &Source) {
  auto First = parseUnit(Source);
  ASSERT_TRUE(First->ok()) << First->Diags.str();
  ASSERT_EQ(First->Prog->functions().size(), 1u);
  std::string Printed = printFunction(First->Prog->functions()[0]);

  auto Second = parseUnit(Printed);
  ASSERT_TRUE(Second->ok()) << "re-parse failed for:\n"
                            << Printed << Second->Diags.str();
  std::string Reprinted = printFunction(Second->Prog->functions()[0]);
  EXPECT_EQ(Printed, Reprinted);
}

TEST(Printer, RoundTripsSimpleFunctions) {
  expectRoundTrip("float f(float a, float b) { return a * b + 1.5; }");
  expectRoundTrip("int f(int a) { if (a > 0) { return 1; } return 0; }");
  expectRoundTrip(
      "vec3 f(vec3 p) { return normalize(p) * length(p) + vec3(1.0); }");
}

TEST(Printer, RoundTripsControlFlow) {
  expectRoundTrip(R"(
float f(float n) {
  float total = 0.0;
  float i = 0.0;
  while (i < n) {
    if (i > 2.0) {
      total = total + i;
    } else {
      total = total - i;
    }
    i = i + 1.0;
  }
  return total;
})");
}

TEST(Printer, ParenthesizationPreservesSemantics) {
  // Printing must add parentheses exactly where precedence demands.
  const char *Source =
      "float f(float a, float b, float c) "
      "{ return (a + b) * c - a / (b - c) + -(a * -b); }";
  auto Unit = parseUnit(Source);
  ASSERT_TRUE(Unit->ok());
  std::string Printed = printFunction(Unit->Prog->functions()[0]);
  auto Reparsed = parseUnit(Printed);
  ASSERT_TRUE(Reparsed->ok()) << Printed;

  auto C1 = compileFunction(*Unit, "f");
  auto C2 = compileFunction(*Reparsed, "f");
  VM Machine;
  std::vector<Value> Args = {Value::makeFloat(1.7f), Value::makeFloat(-2.3f),
                             Value::makeFloat(0.9f)};
  EXPECT_TRUE(Machine.run(*C1, Args).Result.equals(
      Machine.run(*C2, Args).Result));
}

TEST(Printer, TernaryAndLogicalRoundTrip) {
  expectRoundTrip("float f(bool c, bool d, float a, float b) "
                  "{ return c && d || !c ? a : b; }");
}

TEST(Printer, FloatLiteralsStayFloats) {
  auto Unit = parseUnit("float f() { return 2.0 + 1e9 + 0.5; }");
  std::string Printed = printFunction(Unit->Prog->functions()[0]);
  EXPECT_NE(Printed.find("2.0"), std::string::npos) << Printed;
  auto Reparsed = parseUnit(Printed);
  EXPECT_TRUE(Reparsed->ok()) << Printed;
}

TEST(Printer, CacheNotationMatchesFigure2) {
  auto Unit = parseUnit("float f(float a, float v) { return pow(a, 2.0) * v; }");
  auto Spec = specializeAndCompile(*Unit, "f", {"v"});
  ASSERT_TRUE(Spec.has_value());
  EXPECT_NE(Spec->loaderSource().find("(cache->slot0 = pow(a, 2.0))"),
            std::string::npos)
      << Spec->loaderSource();
  EXPECT_NE(Spec->readerSource().find("cache->slot0 * v"),
            std::string::npos)
      << Spec->readerSource();
  // Both signatures advertise the cache parameter.
  EXPECT_NE(Spec->loaderSource().find(", cache)"), std::string::npos);
  EXPECT_NE(Spec->readerSource().find(", cache)"), std::string::npos);
}

// ---------------------------------------------------------------- Cloner

TEST(Cloner, DeepCopyIsDisjoint) {
  auto Unit = parseUnit(
      "float f(float a) { float x = a * 2.0; return x + a; }");
  Function *F = Unit->Prog->functions()[0];
  ASTCloner Cloner(Unit->Ctx);
  Function *Copy = Cloner.cloneFunction(F, "g");

  // No node is shared.
  std::set<const Stmt *> Original;
  walkStmts(F->body(), [&](Stmt *S) { Original.insert(S); });
  walkStmts(Copy->body(), [&](Stmt *S) {
    EXPECT_EQ(Original.count(S), 0u);
  });
  // Parameters were re-created and references remapped.
  ASSERT_EQ(Copy->params().size(), 1u);
  EXPECT_NE(Copy->params()[0], F->params()[0]);
  walkExprsInStmt(Copy->body(), [&](Expr *E) {
    if (auto *Ref = dyn_cast<VarRefExpr>(E)) {
      if (Ref->name() == "a") {
        EXPECT_EQ(Ref->decl(), Copy->params()[0]);
      }
    }
  });
}

TEST(Cloner, LocalDeclsRemapped) {
  auto Unit = parseUnit(
      "float f(float a) { float x = a; x = x + 1.0; return x; }");
  Function *F = Unit->Prog->functions()[0];
  ASTCloner Cloner(Unit->Ctx);
  Function *Copy = Cloner.cloneFunction(F, "g");

  VarDecl *NewX = nullptr;
  walkStmts(Copy->body(), [&](Stmt *S) {
    if (auto *Decl = dyn_cast<DeclStmt>(S))
      NewX = Decl->var();
  });
  ASSERT_NE(NewX, nullptr);
  walkStmts(Copy->body(), [&](Stmt *S) {
    if (auto *Assign = dyn_cast<AssignStmt>(S)) {
      EXPECT_EQ(Assign->target(), NewX);
    }
  });
  walkExprsInStmt(Copy->body(), [&](Expr *E) {
    if (auto *Ref = dyn_cast<VarRefExpr>(E)) {
      if (Ref->name() == "x") {
        EXPECT_EQ(Ref->decl(), NewX);
      }
    }
  });
}

TEST(Cloner, PreservesTypesAndBuiltins) {
  auto Unit = parseUnit("float f(vec3 p) { return length(p * 2.0); }");
  Function *F = Unit->Prog->functions()[0];
  ASTCloner Cloner(Unit->Ctx);
  Function *Copy = Cloner.cloneFunction(F, "g");
  walkExprsInStmt(Copy->body(), [&](Expr *E) {
    EXPECT_FALSE(E->type().isVoid());
    if (auto *Call = dyn_cast<CallExpr>(E)) {
      EXPECT_TRUE(Call->isResolved());
      EXPECT_EQ(Call->builtin(), BuiltinId::BI_LengthV3);
    }
  });
}

TEST(Cloner, CloneIsExecutableAndEquivalent) {
  const char *Source = R"(
float f(float a, float n) {
  float total = 0.0;
  for (int i = 0; toFloat(i) < n; i = i + 1) {
    if (a > 1.0) { total = total + a; } else { total = total - 1.0; }
  }
  return total;
})";
  auto Unit = parseUnit(Source);
  Function *F = Unit->Prog->functions()[0];
  ASTCloner Cloner(Unit->Ctx);
  Function *Copy = Cloner.cloneFunction(F, "g");

  Chunk C1 = BytecodeCompiler().compile(F);
  Chunk C2 = BytecodeCompiler().compile(Copy);
  VM Machine;
  for (float A : {0.5f, 2.0f}) {
    std::vector<Value> Args = {Value::makeFloat(A), Value::makeFloat(6.0f)};
    auto R1 = Machine.run(C1, Args);
    auto R2 = Machine.run(C2, Args);
    ASSERT_TRUE(R1.ok());
    ASSERT_TRUE(R2.ok());
    EXPECT_TRUE(R1.Result.equals(R2.Result));
  }
}

TEST(Cloner, FreshNodeIds) {
  auto Unit = parseUnit("float f(float a) { return a + 1.0; }");
  Function *F = Unit->Prog->functions()[0];
  uint32_t Before = Unit->Ctx.numNodeIds();
  ASTCloner Cloner(Unit->Ctx);
  Function *Copy = Cloner.cloneFunction(F, "g");
  EXPECT_GT(Unit->Ctx.numNodeIds(), Before);
  walkExprsInStmt(Copy->body(), [&](Expr *E) {
    EXPECT_GE(E->nodeId(), Before);
  });
}

} // namespace
