//===- tests/TestExecTiers.cpp - Execution-tier equivalence tests ------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast execution tiers' contract (docs/ENGINE.md, "Execution
/// tiers"): the decoded/fused ExecChunk and the threaded, batched, and
/// native (copy-and-patch JIT) tiers are pure speed — every gallery
/// shader renders bit-identical framebuffers and loads bit-identical
/// cache arenas under every tier and thread count, traps carry the same
/// message everywhere, and superinstruction fusion never crosses a jump
/// target. (On hosts where the native tier cannot stitch it runs its
/// threaded deopt path, so these tests still pin the fallback.)
///
//===----------------------------------------------------------------------===//

#include "engine/RenderEngine.h"
#include "shading/ShaderLab.h"
#include "vm/ExecChunk.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace dspec;

namespace {

bool bitIdentical(const Value &A, const Value &B) {
  return A.Kind == B.Kind && A.I == B.I &&
         std::memcmp(A.F, B.F, sizeof(A.F)) == 0;
}

void expectSameImage(const Framebuffer &A, const Framebuffer &B,
                     const std::string &What) {
  ASSERT_EQ(A.width(), B.width());
  ASSERT_EQ(A.height(), B.height());
  for (unsigned Y = 0; Y < A.height(); ++Y)
    for (unsigned X = 0; X < A.width(); ++X)
      ASSERT_TRUE(bitIdentical(A.at(X, Y), B.at(X, Y)))
          << What << ": pixel " << X << "," << Y << " differs";
}

std::vector<unsigned char> arenaBytes(const CacheArena &Arena) {
  const unsigned char *Raw = Arena.raw();
  return std::vector<unsigned char>(Raw, Raw + Arena.totalBytes());
}

Chunk compileOne(const std::string &Source, const std::string &Name) {
  auto Unit = parseUnit(Source);
  EXPECT_TRUE(Unit->ok()) << Unit->Diags.str();
  auto Code = compileFunction(*Unit, Name);
  EXPECT_TRUE(Code.has_value());
  return *Code;
}

constexpr ExecTier kTiers[] = {ExecTier::Switch, ExecTier::Threaded,
                               ExecTier::Batched, ExecTier::Native};

//===----------------------------------------------------------------------===//
// ExecChunk: decoding, fusion, flags
//===----------------------------------------------------------------------===//

TEST(ExecChunk, MirrorRangeMatchesOpcodeNumbering) {
  // Dispatch tables index ExecInstr::Op directly, so the mirror range
  // must track OpCode value-for-value.
  static_assert(static_cast<unsigned>(FusedOp::F_Const) ==
                static_cast<unsigned>(OpCode::OC_Const));
  static_assert(static_cast<unsigned>(FusedOp::F_ReturnVoid) ==
                static_cast<unsigned>(OpCode::OC_ReturnVoid));
  static_assert(static_cast<unsigned>(FusedOp::F_ConstAdd) == kNumBaseOps);
  EXPECT_FALSE(isSuperinstruction(FusedOp::F_ReturnVoid));
  EXPECT_TRUE(isSuperinstruction(FusedOp::F_ConstAdd));
  EXPECT_TRUE(isSuperinstruction(FusedOp::F_GeJf));
}

TEST(ExecChunk, FusesStraightLineIdiomsAndKeepsSemantics) {
  Chunk Code = compileOne("float f(float a) { return a * 2.0 + 1.0; }", "f");
  ExecChunk Exec = buildExecChunk(Code);
  ASSERT_TRUE(Exec.Valid);
  EXPECT_TRUE(Exec.StraightLine);
  EXPECT_TRUE(Exec.BatchSafe);
  EXPECT_LT(Exec.Code.size(), Code.Code.size())
      << "fusion should shrink the straight-line stream";

  std::vector<unsigned> Histogram = opcodeHistogram(Exec);
  ASSERT_EQ(Histogram.size(), kNumFusedOps);
  unsigned Total = 0;
  for (unsigned N : Histogram)
    Total += N;
  EXPECT_EQ(Total, Exec.Code.size());
  EXPECT_GT(Histogram[static_cast<unsigned>(FusedOp::F_ConstMul)] +
                Histogram[static_cast<unsigned>(FusedOp::F_ConstAdd)],
            0u)
      << "const+mul / const+add are the targeted idioms here";
  EXPECT_FALSE(fusedHistogram(Exec).empty());

  VM Machine;
  for (float X : {0.0f, -3.5f, 1e20f}) {
    auto Ref = Machine.run(Code, {Value::makeFloat(X)});
    auto Fast = Machine.runThreaded(Exec, {Value::makeFloat(X)});
    ASSERT_TRUE(Ref.ok());
    ASSERT_TRUE(Fast.ok()) << Fast.TrapMessage;
    EXPECT_TRUE(bitIdentical(Ref.Result, Fast.Result)) << X;
  }
}

TEST(ExecChunk, BranchyChunksStayExecutableAndClassify) {
  Chunk Code = compileOne("int f(int n) {\n"
                          "  int total = 0;\n"
                          "  int i = 0;\n"
                          "  while (i < n) {\n"
                          "    if (i % 2 == 0) { total = total + i; }\n"
                          "    i = i + 1;\n"
                          "  }\n"
                          "  return total;\n"
                          "}",
                          "f");
  ExecChunk Exec = buildExecChunk(Code);
  ASSERT_TRUE(Exec.Valid);
  EXPECT_FALSE(Exec.StraightLine);
  // Branchy chunks are batch-eligible since the masked batched tier: the
  // loop exit classifies unmaskable (runtime divergence bails the tile),
  // the inner if classifies as a maskable diamond.
  EXPECT_TRUE(Exec.BatchSafe);
  EXPECT_TRUE(Exec.HasLoops);
  EXPECT_EQ(Exec.MaskableBranches, 1u);
  EXPECT_EQ(Exec.UnmaskableBranches, 1u);
  ASSERT_EQ(Exec.BranchJoin.size(), Exec.Code.size());

  // Fusion must preserve loop semantics exactly — jump targets are
  // remapped and no pair straddles one.
  VM Machine;
  for (int N : {0, 1, 2, 7, 100}) {
    auto Ref = Machine.run(Code, {Value::makeInt(N)});
    auto Fast = Machine.runThreaded(Exec, {Value::makeInt(N)});
    ASSERT_TRUE(Ref.ok());
    ASSERT_TRUE(Fast.ok()) << Fast.TrapMessage;
    EXPECT_TRUE(bitIdentical(Ref.Result, Fast.Result)) << "n=" << N;
  }

  // The unfused decode must agree too (the switch-dispatch fallback
  // executes the same stream).
  ExecChunk Plain = buildExecChunk(Code, /*Fuse=*/false);
  ASSERT_TRUE(Plain.Valid);
  EXPECT_EQ(Plain.Code.size(), Code.Code.size());
  auto Fast = Machine.runThreaded(Plain, {Value::makeInt(9)});
  auto Ref = Machine.run(Code, {Value::makeInt(9)});
  EXPECT_TRUE(bitIdentical(Ref.Result, Fast.Result));
}

TEST(ExecChunk, InvalidChunkIsRejected) {
  Chunk Bad;
  Bad.Name = "bad";
  Bad.ReturnType = Type(TypeKind::TK_Int);
  Bad.Code = {{OpCode::OC_Add, 0, 0, 0}, // stack underflow
              {OpCode::OC_Return, 0, 0, 0}};
  ExecChunk Exec = buildExecChunk(Bad);
  EXPECT_FALSE(Exec.Valid);
  EXPECT_TRUE(Exec.Code.empty());
}

TEST(ExecChunk, GalleryReadersDecodeAndAllBatch) {
  // Every gallery reader must decode; with masked execution, batch
  // eligibility is exactly effect-freedom — branchy readers (clouds,
  // rings) batch too, with their loop branches classified unmaskable
  // (divergence there bails the tile at runtime).
  ShaderLab Lab(4, 3);
  unsigned BatchSafe = 0, Branchy = 0, Total = 0;
  for (const ShaderInfo &Info : shaderGallery()) {
    auto Spec = Lab.specializePartition(Info, 0);
    ASSERT_TRUE(Spec.has_value()) << Lab.lastError();
    ExecChunk Exec = buildExecChunk(Spec->compiled().ReaderChunk);
    ASSERT_TRUE(Exec.Valid) << Info.Name;
    ++Total;
    if (Exec.BatchSafe)
      ++BatchSafe;
    EXPECT_EQ(Exec.BatchSafe, !Exec.HasEffects) << Info.Name;
    if (!Exec.StraightLine) {
      ++Branchy;
      EXPECT_TRUE(Exec.HasLoops) << Info.Name;
      EXPECT_GT(Exec.UnmaskableBranches, 0u) << Info.Name;
    } else {
      EXPECT_EQ(Exec.MaskableBranches + Exec.UnmaskableBranches, 0u)
          << Info.Name;
    }
  }
  EXPECT_EQ(Total, 10u);
  EXPECT_EQ(BatchSafe, 10u) << "all gallery readers are effect-free";
  EXPECT_GE(Branchy, 1u) << "clouds/rings loop over octaves";
}

//===----------------------------------------------------------------------===//
// Div/Mod diagnostics carry the offending SourceLoc
//===----------------------------------------------------------------------===//

TEST(VMTrap, IntDivisionByZeroReportsSourceLoc) {
  Chunk Code = compileOne("int f(int a) {\n  return 10 / a;\n}", "f");
  VM Machine;
  auto R = Machine.run(Code, {Value::makeInt(0)});
  ASSERT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMessage.find("integer division by zero"),
            std::string::npos)
      << R.TrapMessage;
  EXPECT_NE(R.TrapMessage.find(" at 2:"), std::string::npos)
      << "expected the divisor's line in: " << R.TrapMessage;

  // The threaded tier reports the identical message.
  ExecChunk Exec = buildExecChunk(Code);
  ASSERT_TRUE(Exec.Valid);
  auto Fast = Machine.runThreaded(Exec, {Value::makeInt(0)});
  ASSERT_TRUE(Fast.Trapped);
  EXPECT_EQ(Fast.TrapMessage, R.TrapMessage);
}

TEST(VMTrap, IntModuloByZeroReportsSourceLoc) {
  Chunk Code = compileOne("int f(int a) {\n  return 7 % a;\n}", "f");
  VM Machine;
  auto R = Machine.run(Code, {Value::makeInt(0)});
  ASSERT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMessage.find("integer modulo by zero"), std::string::npos)
      << R.TrapMessage;
  EXPECT_NE(R.TrapMessage.find(" at 2:"), std::string::npos) << R.TrapMessage;
}

TEST(VMTrap, HandWrittenChunksWithoutLocsKeepBareMessage) {
  // Chunks predating the loc stamping (snapshots, tests) carry zero
  // operands and must keep the original message verbatim.
  Chunk Code;
  Code.Name = "old";
  Code.ReturnType = Type(TypeKind::TK_Int);
  Code.Constants = {Value::makeInt(1), Value::makeInt(0)};
  Code.Code = {{OpCode::OC_Const, 0, 0, 0},
               {OpCode::OC_Const, 1, 0, 0},
               {OpCode::OC_Div, 0, 0, 0},
               {OpCode::OC_Return, 0, 0, 0}};
  VM Machine;
  auto R = Machine.run(Code, {});
  ASSERT_TRUE(R.Trapped);
  EXPECT_EQ(R.TrapMessage, "integer division by zero in 'old'");
}

//===----------------------------------------------------------------------===//
// Differential fuzz-lite: the whole gallery through every tier
//===----------------------------------------------------------------------===//

/// Every gallery shader through every tier at 1 and 4 threads:
/// loader/reader/plain framebuffers bit-identical to the switch@1
/// reference, and the cache arena loads the exact same bytes.
TEST(ExecTiers, GalleryDifferentialAcrossTiersAndThreads) {
  const unsigned W = 9, H = 7;
  ShaderLab Lab(W, H);

  for (const ShaderInfo &Info : shaderGallery()) {
    auto Spec = Lab.specializePartition(Info, 0);
    ASSERT_TRUE(Spec.has_value()) << Lab.lastError();

    // Reference: the classic switch interpreter, serial.
    RenderEngine Ref(1);
    Ref.setExecTier(ExecTier::Switch);
    auto Controls = ShaderLab::defaultControls(Info);
    Framebuffer LoadRef(W, H), ReadRef(W, H), PlainRef(W, H);
    ASSERT_TRUE(Spec->load(Ref, Lab.grid(), Controls, &LoadRef))
        << Info.Name << ": " << Ref.lastTrap();
    std::vector<unsigned char> ArenaRef = arenaBytes(Spec->arena());
    Controls[0] = Info.Controls[0].SweepMax;
    ASSERT_TRUE(Spec->readFrame(Ref, Lab.grid(), Controls, &ReadRef));
    ASSERT_TRUE(Spec->originalFrame(Ref, Lab.grid(), Controls, &PlainRef));

    for (ExecTier Tier : kTiers) {
      for (unsigned Threads : {1u, 4u}) {
        RenderEngine Engine(Threads);
        Engine.setExecTier(Tier);
        std::string Tag = Info.Name + " [" + execTierName(Tier) + " @" +
                          std::to_string(Threads) + "t]";
        Controls = ShaderLab::defaultControls(Info);
        Framebuffer Load(W, H), Read(W, H), Plain(W, H);
        ASSERT_TRUE(Spec->load(Engine, Lab.grid(), Controls, &Load))
            << Tag << ": " << Engine.lastTrap();
        EXPECT_EQ(arenaBytes(Spec->arena()), ArenaRef)
            << Tag << ": loader pass filled different arena bytes";
        Controls[0] = Info.Controls[0].SweepMax;
        ASSERT_TRUE(Spec->readFrame(Engine, Lab.grid(), Controls, &Read))
            << Tag << ": " << Engine.lastTrap();
        ASSERT_TRUE(
            Spec->originalFrame(Engine, Lab.grid(), Controls, &Plain))
            << Tag << ": " << Engine.lastTrap();
        expectSameImage(LoadRef, Load, "loader " + Tag);
        expectSameImage(ReadRef, Read, "reader " + Tag);
        expectSameImage(PlainRef, Plain, "original " + Tag);
      }
    }
  }
}

/// Trap behaviour is tier-independent: same failure, same deterministic
/// lowest-pixel message — the batched tier re-runs trapping tiles
/// per-pixel to recover the canonical diagnostic.
TEST(ExecTiers, TrapMessagesIdenticalAcrossTiers) {
  Chunk Bad;
  Bad.Name = "bad";
  Bad.NumParams = 4;
  Bad.LocalTypes = {TypeKind::TK_Vec2, TypeKind::TK_Vec3, TypeKind::TK_Vec3,
                    TypeKind::TK_Vec3};
  Bad.ReturnType = Type(TypeKind::TK_Int);
  Bad.Constants = {Value::makeInt(1), Value::makeInt(0)};
  Bad.Code = {{OpCode::OC_Const, 0, 0, 0},
              {OpCode::OC_Const, 1, 0, 0},
              {OpCode::OC_Div, 3, 9, 0}, // stamped loc 3:9
              {OpCode::OC_Return, 0, 0, 0}};

  RenderGrid Grid(8, 6);
  std::string FirstMessage;
  for (ExecTier Tier : kTiers) {
    RenderEngine Engine(2);
    Engine.setExecTier(Tier);
    Framebuffer Out(8, 6);
    EXPECT_FALSE(Engine.plainPass(Bad, Grid, /*Controls=*/{}, &Out))
        << execTierName(Tier);
    EXPECT_NE(Engine.lastTrap().find("pixel 0:"), std::string::npos)
        << Engine.lastTrap();
    EXPECT_NE(Engine.lastTrap().find(" at 3:9"), std::string::npos)
        << Engine.lastTrap();
    if (FirstMessage.empty())
      FirstMessage = Engine.lastTrap();
    else
      EXPECT_EQ(Engine.lastTrap(), FirstMessage)
          << "trap message differs under " << execTierName(Tier);
  }
}

/// Warm starts are tier-independent too: a snapshot saved once renders
/// bit-identical reader frames under every tier (snapshots keep the
/// plain serde-v1 Chunk; each engine re-decodes and re-fuses on load).
TEST(ExecTiers, SnapshotWarmStartIdenticalAcrossTiers) {
  const ShaderInfo *Info = findShader("marble");
  ASSERT_NE(Info, nullptr);
  RenderGrid Grid(10, 8);

  auto Unit = parseUnit(Info->Source);
  ASSERT_TRUE(Unit->ok()) << Unit->Diags.str();
  auto Spec =
      specializeAndCompile(*Unit, Info->Name, {Info->Controls[0].Name});
  ASSERT_TRUE(Spec.has_value());
  auto Controls = ShaderLab::defaultControls(*Info);

  RenderEngine Engine(1);
  CacheArena Arena;
  ASSERT_TRUE(Engine.loaderPass(Spec->LoaderChunk, Spec->Spec.Layout, Grid,
                                Controls, Arena))
      << Engine.lastTrap();

  SnapshotMeta Meta;
  Meta.FragmentName = Info->Name;
  Meta.VaryingParams = {Info->Controls[0].Name};
  Meta.GridWidth = Grid.width();
  Meta.GridHeight = Grid.height();
  Meta.Controls = Controls;
  const std::string Path = testing::TempDir() + "dspec_tier.dsnap";
  std::string Error;
  ASSERT_TRUE(RenderEngine::saveSnapshot(Path, Meta, Spec->LoaderChunk,
                                         Spec->ReaderChunk, Spec->Spec.Layout,
                                         Arena, &Error))
      << Error;

  auto Warm = RenderEngine::fromSnapshot(Path, &Error);
  ASSERT_TRUE(Warm.has_value()) << Error;

  Framebuffer RefImage(Grid.width(), Grid.height());
  bool HaveRef = false;
  for (ExecTier Tier : kTiers) {
    RenderEngine Reader(2);
    Reader.setExecTier(Tier);
    Framebuffer Out(Grid.width(), Grid.height());
    ASSERT_TRUE(Reader.readerPass(Warm->Reader, Warm->Grid, Controls,
                                  Warm->Arena, &Out))
        << execTierName(Tier) << ": " << Reader.lastTrap();
    if (!HaveRef) {
      RefImage = Out;
      HaveRef = true;
    } else {
      expectSameImage(RefImage, Out,
                      std::string("warm reader [") + execTierName(Tier) +
                          "]");
    }
  }
  std::remove(Path.c_str());
}

} // namespace
