//===- tests/TestSupport.cpp - Support library tests ------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

using namespace dspec;

namespace {

TEST(Arena, AllocatesAndAligns) {
  Arena A;
  int *I = A.create<int>(42);
  double *D = A.create<double>(3.5);
  EXPECT_EQ(*I, 42);
  EXPECT_EQ(*D, 3.5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(D) % alignof(double), 0u);
  EXPECT_GE(A.bytesAllocated(), sizeof(int) + sizeof(double));
}

TEST(Arena, RunsDestructors) {
  static int Destroyed = 0;
  struct Probe {
    ~Probe() { ++Destroyed; }
  };
  Destroyed = 0;
  {
    Arena A;
    A.create<Probe>();
    A.create<Probe>();
    A.create<int>(1); // trivially destructible: not registered
  }
  EXPECT_EQ(Destroyed, 2);
}

TEST(Arena, GrowsAcrossSlabs) {
  Arena A;
  for (int I = 0; I < 10000; ++I)
    A.create<std::array<char, 64>>();
  EXPECT_GT(A.slabCount(), 1u);
}

TEST(Arena, ResetReleasesEverything) {
  static int Destroyed = 0;
  struct Probe {
    ~Probe() { ++Destroyed; }
  };
  Destroyed = 0;
  Arena A;
  A.create<Probe>();
  A.reset();
  EXPECT_EQ(Destroyed, 1);
  EXPECT_EQ(A.bytesAllocated(), 0u);
}

TEST(Arena, HandlesOversizedAllocations) {
  Arena A;
  void *Big = A.allocate(1 << 20, 16);
  EXPECT_NE(Big, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Big) % 16, 0u);
}

struct CastBase {
  enum class Kind { A, B } K;
  explicit CastBase(Kind K) : K(K) {}
};
struct CastA : CastBase {
  CastA() : CastBase(Kind::A) {}
  static bool classof(const CastBase *B) { return B->K == Kind::A; }
};
struct CastB : CastBase {
  CastB() : CastBase(Kind::B) {}
  static bool classof(const CastBase *B) { return B->K == Kind::B; }
};

TEST(Casting, IsaCastDynCast) {
  CastA A;
  CastBase *Base = &A;
  EXPECT_TRUE(isa<CastA>(Base));
  EXPECT_FALSE(isa<CastB>(Base));
  EXPECT_TRUE((isa<CastB, CastA>(Base)));
  EXPECT_EQ(cast<CastA>(Base), &A);
  EXPECT_EQ(dyn_cast<CastB>(Base), nullptr);
  EXPECT_NE(dyn_cast<CastA>(Base), nullptr);
  CastBase *Null = nullptr;
  EXPECT_FALSE(isa_and_nonnull<CastA>(Null));
  EXPECT_EQ(dyn_cast_or_null<CastA>(Null), nullptr);
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(1, 2), "watch out");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(3, 4), "boom");
  Diags.note(SourceLoc(), "context");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
  std::string Text = Diags.str();
  EXPECT_NE(Text.find("error: 3:4: boom"), std::string::npos);
  EXPECT_NE(Text.find("warning: 1:2: watch out"), std::string::npos);
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(StringUtil, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(formatString("empty"), "empty");
  // Long outputs are not truncated.
  std::string Long(500, 'a');
  EXPECT_EQ(formatString("%s", Long.c_str()).size(), 500u);
}

TEST(StringUtil, FormatFloatRoundTrips) {
  for (float V : {0.0f, 1.0f, -1.5f, 0.1f, 3.14159265f, 1e-8f, 2.5e10f}) {
    std::string Text = formatFloat(V);
    EXPECT_EQ(std::strtof(Text.c_str(), nullptr), V) << Text;
  }
}

TEST(StringUtil, FormatFloatLexesAsFloat) {
  EXPECT_EQ(formatFloat(2.0f), "2.0");
  EXPECT_EQ(formatFloat(-3.0f), "-3.0");
  EXPECT_NE(formatFloat(1e20f).find('e'), std::string::npos);
}

TEST(StringUtil, SplitTrimJoin) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(trimString("  hi \n"), "hi");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ","), "");
}

TEST(SourceLoc, Validity) {
  SourceLoc Invalid;
  EXPECT_FALSE(Invalid.isValid());
  EXPECT_EQ(Invalid.str(), "<unknown>");
  SourceLoc Loc(7, 3);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "7:3");
  EXPECT_TRUE(Loc == SourceLoc(7, 3));
  EXPECT_TRUE(Loc != SourceLoc(7, 4));
}

} // namespace
