//===- tests/TestArenaLayout.cpp - Arena layout polymorphism tests -----------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layout-polymorphic CacheArena's contract:
///
///  - differential property: every gallery shader renders bit-identical
///    loader/reader frames — and fills bit-identical *canonical* arena
///    bytes — under every physical layout, every execution tier, and
///    several thread counts;
///  - warm starts: snapshots saved from a mapped arena stay canonical
///    pixel-major on disk and round-trip bit-identically, as do spill
///    store units whose arena is blocked;
///  - cold-slot packing: conditionally-touched slots leave the hot
///    stride without changing a single decoded byte;
///  - the Section 4.3 measured-bytes limiter shrinks the hot working
///    set to the LLC bound without changing results;
///  - the measured `auto` policy (candidates + argmin with hysteresis)
///    and the serde carrying reuse weights across processes.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "engine/RenderEngine.h"
#include "service/SpillStore.h"
#include "shading/ShaderLab.h"
#include "snapshot/Snapshot.h"
#include "specialize/LayoutSerde.h"
#include "vm/VM.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstring>

using namespace dspec;

namespace {

bool bitIdentical(const Value &A, const Value &B) {
  return A.Kind == B.Kind && A.I == B.I &&
         std::memcmp(A.F, B.F, sizeof(A.F)) == 0;
}

void expectSameImage(const Framebuffer &A, const Framebuffer &B,
                     const std::string &What) {
  ASSERT_EQ(A.width(), B.width());
  ASSERT_EQ(A.height(), B.height());
  for (unsigned Y = 0; Y < A.height(); ++Y)
    for (unsigned X = 0; X < A.width(); ++X)
      ASSERT_TRUE(bitIdentical(A.at(X, Y), B.at(X, Y)))
          << What << ": pixel " << X << "," << Y << " differs";
}

/// The logical arena image — layout-independent by construction.
std::vector<unsigned char> canonical(const CacheArena &Arena) {
  ArenaBuffer Bytes = Arena.canonicalBytes();
  return std::vector<unsigned char>(Bytes.begin(), Bytes.end());
}

constexpr ExecTier kTiers[] = {ExecTier::Switch, ExecTier::Threaded,
                               ExecTier::Batched, ExecTier::Native};

struct NamedLayout {
  const char *Name;
  ArenaLayoutConfig Cfg;
};

/// The layouts the differential suite sweeps: the identity, full
/// struct-of-arrays, a tile size aligned to the engine's work tiles,
/// and a deliberately tile-incompatible block size (the batched tier
/// must fall back to mapped per-lane addressing, not misrender).
const NamedLayout kLayouts[] = {
    {"pixel-major", {ArenaLayout::PixelMajor, 0, false}},
    {"pixel-major/pack", {ArenaLayout::PixelMajor, 0, true}},
    {"slot-major/pack", {ArenaLayout::SlotMajor, 0, true}},
    {"tile-blocked/256/pack", {ArenaLayout::TileBlocked, 256, true}},
    {"tile-blocked/7", {ArenaLayout::TileBlocked, 7, false}},
};

//===----------------------------------------------------------------------===//
// Differential property: layouts x tiers x threads
//===----------------------------------------------------------------------===//

TEST(ArenaLayout, GalleryDifferentialAcrossLayoutsTiersAndThreads) {
  const unsigned W = 9, H = 7;
  ShaderLab Lab(W, H);

  for (const ShaderInfo &Info : shaderGallery()) {
    auto Spec = Lab.specializePartition(Info, 0);
    ASSERT_TRUE(Spec.has_value()) << Lab.lastError();

    // Reference: switch tier over the seed pixel-major arena.
    RenderEngine Ref(1);
    Ref.setExecTier(ExecTier::Switch);
    auto Controls = ShaderLab::defaultControls(Info);
    Framebuffer LoadRef(W, H), ReadRef(W, H);
    ASSERT_TRUE(Spec->load(Ref, Lab.grid(), Controls, &LoadRef))
        << Info.Name << ": " << Ref.lastTrap();
    std::vector<unsigned char> CanonicalRef = canonical(Spec->arena());
    Controls[0] = Info.Controls[0].SweepMax;
    ASSERT_TRUE(Spec->readFrame(Ref, Lab.grid(), Controls, &ReadRef));

    for (const NamedLayout &L : kLayouts) {
      // The loader engine owns the physical arrangement; readers accept
      // whatever the arena carries.
      RenderEngine Loader(1);
      Loader.setArenaLayout(L.Cfg);
      Controls = ShaderLab::defaultControls(Info);
      Framebuffer Load(W, H);
      ASSERT_TRUE(Spec->load(Loader, Lab.grid(), Controls, &Load))
          << Info.Name << " [" << L.Name << "]: " << Loader.lastTrap();
      expectSameImage(LoadRef, Load,
                      "loader " + Info.Name + " [" + L.Name + "]");
      EXPECT_EQ(canonical(Spec->arena()), CanonicalRef)
          << Info.Name << " [" << L.Name
          << "]: canonical arena bytes diverge from pixel-major";

      Controls[0] = Info.Controls[0].SweepMax;
      for (ExecTier Tier : kTiers) {
        for (unsigned Threads : {1u, 4u}) {
          RenderEngine Engine(Threads);
          Engine.setExecTier(Tier);
          std::string Tag = Info.Name + " [" + L.Name + " " +
                            execTierName(Tier) + " @" +
                            std::to_string(Threads) + "t]";
          Framebuffer Read(W, H);
          ASSERT_TRUE(Spec->readFrame(Engine, Lab.grid(), Controls, &Read))
              << Tag << ": " << Engine.lastTrap();
          expectSameImage(ReadRef, Read, "reader " + Tag);
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// CacheArena mechanics
//===----------------------------------------------------------------------===//

/// A little three-slot layout (float, vec3, float) with the middle slot
/// cold — enough structure to exercise packing and word maps.
CacheLayout threeSlotShape() {
  CacheLayout Shape;
  Shape.addSlot(Type(TypeKind::TK_Float));
  Shape.addSlot(Type(TypeKind::TK_Vec3));
  Shape.addSlot(Type(TypeKind::TK_Float));
  Shape.setReuseWeight(0, 2.0f);
  Shape.setReuseWeight(1, 0.25f); // cold
  Shape.setReuseWeight(2, 1.0f);
  return Shape;
}

/// Fills every slot of every pixel with a recognizable pattern through
/// the arena's own views.
void fillPattern(CacheArena &Arena) {
  for (unsigned P = 0; P < Arena.pixelCount(); ++P) {
    CacheView View = Arena.view(P);
    for (const CacheSlot &S : Arena.layout().slots()) {
      Value V = S.SlotType.kind() == TypeKind::TK_Vec3
                    ? Value::makeVec3(P + 0.5f, S.Index + 0.25f, P * 2.0f)
                    : Value::makeFloat(P * 10.0f + S.Index);
      View.store(S.Offset, V);
    }
  }
}

TEST(ArenaLayout, MappedViewsDecodeIdenticallyToDense) {
  CacheLayout Shape = threeSlotShape();
  CacheArena Dense(30, Shape);
  fillPattern(Dense);
  EXPECT_TRUE(Dense.denseViews());
  EXPECT_EQ(Dense.physicalBytes(), Dense.totalBytes());

  for (const NamedLayout &L : kLayouts) {
    CacheArena Mapped(30, Shape, L.Cfg);
    fillPattern(Mapped);
    EXPECT_EQ(canonical(Mapped), canonical(Dense)) << L.Name;
    for (unsigned P = 0; P < 30; P += 7) {
      auto A = Dense.decode(P), B = Mapped.decode(P);
      ASSERT_EQ(A.size(), B.size());
      for (size_t I = 0; I < A.size(); ++I)
        EXPECT_TRUE(bitIdentical(A[I], B[I]))
            << L.Name << ": pixel " << P << " slot " << I;
    }
  }
}

TEST(ArenaLayout, PackColdShrinksTheHotStrideOnly) {
  CacheLayout Shape = threeSlotShape();
  ASSERT_TRUE(Shape.hasColdSlots());
  EXPECT_EQ(Shape.totalBytes(), 20u);
  EXPECT_EQ(Shape.hotBytes(), 8u); // vec3 slot is cold

  CacheArena Packed(16, Shape, {ArenaLayout::SlotMajor, 0, true});
  EXPECT_EQ(Packed.hotStrideBytes(), 8u);
  EXPECT_EQ(Packed.strideBytes(), 20u);
  CacheArena Unpacked(16, Shape, {ArenaLayout::SlotMajor, 0, false});
  EXPECT_EQ(Unpacked.hotStrideBytes(), 20u);

  // Packing is physical only: canonical images agree byte for byte.
  fillPattern(Packed);
  fillPattern(Unpacked);
  EXPECT_EQ(canonical(Packed), canonical(Unpacked));
}

TEST(ArenaLayout, BatchCompatibilityFollowsBlockGeometry) {
  CacheLayout Shape = threeSlotShape();

  CacheArena Dense(100, Shape);
  EXPECT_TRUE(Dense.batchCompatible(64)); // dense: always
  EXPECT_EQ(Dense.blockPixels(), 1u);

  CacheArena Soa(100, Shape, {ArenaLayout::SlotMajor, 0, false});
  EXPECT_FALSE(Soa.denseViews());
  EXPECT_EQ(Soa.blockPixels(), 100u); // one block covers the grid
  EXPECT_TRUE(Soa.batchCompatible(64));

  CacheArena Blocked(100, Shape, {ArenaLayout::TileBlocked, 8, false});
  EXPECT_EQ(Blocked.blockPixels(), 8u);
  EXPECT_TRUE(Blocked.batchCompatible(4));  // 8 % 4 == 0
  EXPECT_TRUE(Blocked.batchCompatible(8));
  EXPECT_FALSE(Blocked.batchCompatible(3)); // tiles straddle blocks
  // Mapped arenas pad to whole blocks plus tail slack.
  EXPECT_GE(Blocked.physicalBytes(),
            Blocked.totalBytes() + CacheArena::kTailSlackBytes);
}

TEST(ArenaLayout, RestoreReblocksAndMoveRestoreAdoptsIdentity) {
  CacheLayout Shape = threeSlotShape();
  CacheArena Source(25, Shape, {ArenaLayout::TileBlocked, 5, true});
  fillPattern(Source);
  ArenaBuffer Canon = Source.canonicalBytes();

  // Copy-restore into a different blocking: same canonical image.
  CacheArena Blocked;
  ASSERT_TRUE(Blocked.restore(25, Shape, Canon.data(), Canon.size(),
                              {ArenaLayout::SlotMajor, 0, true}));
  EXPECT_EQ(canonical(Blocked), canonical(Source));

  // Wrong size is rejected outright.
  CacheArena Bad;
  EXPECT_FALSE(Bad.restore(25, Shape, Canon.data(), Canon.size() - 4));
  EXPECT_EQ(Bad.pixelCount(), 0u);

  // Move-restore with the identity layout adopts the buffer: no copy,
  // same backing pointer.
  const unsigned char *Donor = Canon.data();
  CacheArena Adopted;
  ASSERT_TRUE(Adopted.restore(25, Shape, std::move(Canon)));
  EXPECT_TRUE(Adopted.denseViews());
  EXPECT_EQ(Adopted.raw(), Donor);
  EXPECT_EQ(canonical(Adopted), canonical(Source));
}

//===----------------------------------------------------------------------===//
// Warm starts from a non-default layout
//===----------------------------------------------------------------------===//

TEST(ArenaLayout, SnapshotSavedFromMappedArenaRoundTrips) {
  const ShaderInfo *Info = findShader("marble");
  ASSERT_NE(Info, nullptr);
  RenderGrid Grid(10, 8);
  const std::string Path = testing::TempDir() + "dspec_arena_layout.dsnap";

  auto Unit = parseUnit(Info->Source);
  ASSERT_TRUE(Unit->ok()) << Unit->Diags.str();
  auto Spec =
      specializeAndCompile(*Unit, Info->Name, {Info->Controls[0].Name});
  ASSERT_TRUE(Spec.has_value());
  auto Controls = ShaderLab::defaultControls(*Info);

  // Load under full struct-of-arrays — the furthest layout from the
  // canonical on-disk form.
  RenderEngine Engine(1);
  Engine.setArenaLayout({ArenaLayout::SlotMajor, 0, true});
  CacheArena Arena;
  Framebuffer Cold(10, 8);
  ASSERT_TRUE(Engine.loaderPass(Spec->LoaderChunk, Spec->Spec.Layout, Grid,
                                Controls, Arena))
      << Engine.lastTrap();
  ASSERT_FALSE(Arena.denseViews());
  ASSERT_TRUE(
      Engine.readerPass(Spec->ReaderChunk, Grid, Controls, Arena, &Cold))
      << Engine.lastTrap();

  SnapshotMeta Meta;
  Meta.FragmentName = Info->Name;
  Meta.VaryingParams = {Info->Controls[0].Name};
  Meta.GridWidth = Grid.width();
  Meta.GridHeight = Grid.height();
  Meta.Controls = Controls;
  std::string Error;
  ASSERT_TRUE(RenderEngine::saveSnapshot(Path, Meta, Spec->LoaderChunk,
                                         Spec->ReaderChunk, Spec->Spec.Layout,
                                         Arena, &Error))
      << Error;

  auto Warm = RenderEngine::fromSnapshot(Path, &Error);
  ASSERT_TRUE(Warm.has_value()) << Error;
  // The ARENA section is canonical pixel-major regardless of how the
  // saving engine blocked its arena.
  EXPECT_EQ(canonical(Warm->Arena), canonical(Arena));

  for (ExecTier Tier : kTiers) {
    RenderEngine Reader(2);
    Reader.setExecTier(Tier);
    Framebuffer WarmFb(10, 8);
    ASSERT_TRUE(Reader.readerPass(Warm->Reader, Warm->Grid, Controls,
                                  Warm->Arena, &WarmFb))
        << execTierName(Tier) << ": " << Reader.lastTrap();
    expectSameImage(Cold, WarmFb,
                    std::string("warm ") + execTierName(Tier));
  }
  std::remove(Path.c_str());
}

TEST(ArenaLayout, SpillRoundTripsAUnitWithABlockedArena) {
  const ShaderInfo *Info = findShader("wood");
  ASSERT_NE(Info, nullptr);
  auto Ast = parseUnit(Info->Source);
  ASSERT_TRUE(Ast->ok()) << Ast->Diags.str();
  auto Spec =
      specializeAndCompile(*Ast, Info->Name, {Info->Controls[0].Name});
  ASSERT_TRUE(Spec.has_value());

  auto U = std::make_shared<SpecializationUnit>(6u, 5u);
  U->Shader = Info->Name;
  U->Loader = Spec->LoaderChunk;
  U->Reader = Spec->ReaderChunk;
  U->Layout = Spec->Spec.Layout;
  U->Varying = {Info->Controls[0].Name};
  U->LoadControls = ShaderLab::defaultControls(*Info);
  RenderEngine Engine(1);
  Engine.setArenaLayout({ArenaLayout::TileBlocked, 10, true});
  ASSERT_TRUE(Engine.loaderPass(U->Loader, U->Layout, U->Grid,
                                U->LoadControls, U->Arena))
      << Engine.lastTrap();

  const std::string Dir = testing::TempDir() + "dspec_spill_layout";
  SpillStore Store;
  std::string Error;
  ASSERT_TRUE(Store.open(Dir, /*MaxBytes=*/0, &Error)) << Error;
  UnitKey Key;
  Key.Shader = Info->Name;
  Key.InvariantHash = 42;
  Store.store(Key, U);
  ASSERT_EQ(Store.stats().Errors, 0u);

  auto Back = Store.load(Key, &Error);
  ASSERT_NE(Back, nullptr) << Error;
  EXPECT_EQ(canonical(Back->Arena), canonical(U->Arena));

  Framebuffer Direct(6, 5), Restored(6, 5);
  RenderEngine Reader(1);
  ASSERT_TRUE(Reader.readerPass(U->Reader, U->Grid, U->LoadControls, U->Arena,
                                &Direct))
      << Reader.lastTrap();
  ASSERT_TRUE(Reader.readerPass(Back->Reader, Back->Grid, U->LoadControls,
                                Back->Arena, &Restored))
      << Reader.lastTrap();
  expectSameImage(Direct, Restored, "spill round trip");
  std::remove(Store.pathFor(Key).c_str());
}

//===----------------------------------------------------------------------===//
// Cold-slot packing from a real specialization
//===----------------------------------------------------------------------===//

// The invariant term under the dynamic conditional is speculatively
// cached and touched on only some pixels — the specializer stamps it
// with a sub-unit reuse weight, making it the packing's cold column.
const char *ColdBranchSource = R"(
vec3 coldshader(vec2 uv, vec3 P, vec3 N, vec3 I,
                float freq, float gain, float v) {
  float base = v * (uv.x + uv.y);
  float extra = 0.0;
  if (v > 0.5) {
    extra = pow(freq, gain) * sin(freq * uv.x) + cos(gain * uv.y);
  }
  return clamp(vec3(base + extra, base * 0.5, extra), 0.0, 1.0);
})";

TEST(ArenaLayout, SpecializerStampsColdSlotsAndPackingPreservesFrames) {
  auto Unit = parseUnit(ColdBranchSource);
  ASSERT_TRUE(Unit->ok()) << Unit->Diags.str();
  SpecializerOptions Options;
  Options.AllowSpeculation = true;
  auto Spec = specializeAndCompile(*Unit, "coldshader", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());

  const CacheLayout &Layout = Spec->Spec.Layout;
  ASSERT_TRUE(Layout.hasColdSlots());
  EXPECT_LT(Layout.hotBytes(), Layout.totalBytes());

  RenderGrid Grid(12, 9);
  // Sweep v across the branch threshold so both arms execute somewhere.
  const std::vector<float> Sweep = {0.1f, 0.75f, 1.5f};
  for (float V : Sweep) {
    std::vector<float> Controls = {2.0f, 1.3f, V};

    RenderEngine Dense(1);
    CacheArena DenseArena;
    Framebuffer DenseFb(12, 9);
    ASSERT_TRUE(Dense.loaderPass(Spec->LoaderChunk, Layout, Grid, Controls,
                                 DenseArena))
        << Dense.lastTrap();
    ASSERT_TRUE(Dense.readerPass(Spec->ReaderChunk, Grid, Controls,
                                 DenseArena, &DenseFb))
        << Dense.lastTrap();

    RenderEngine Packed(1);
    Packed.setArenaLayout({ArenaLayout::SlotMajor, 0, true});
    CacheArena PackedArena;
    Framebuffer PackedFb(12, 9);
    ASSERT_TRUE(Packed.loaderPass(Spec->LoaderChunk, Layout, Grid, Controls,
                                  PackedArena))
        << Packed.lastTrap();
    EXPECT_EQ(PackedArena.hotStrideBytes(), Layout.hotBytes());
    EXPECT_LT(PackedArena.hotStrideBytes(), PackedArena.strideBytes());
    ASSERT_TRUE(Packed.readerPass(Spec->ReaderChunk, Grid, Controls,
                                  PackedArena, &PackedFb))
        << Packed.lastTrap();

    EXPECT_EQ(canonical(PackedArena), canonical(DenseArena)) << "v=" << V;
    expectSameImage(DenseFb, PackedFb, "cold packing v=" + std::to_string(V));
  }
}

//===----------------------------------------------------------------------===//
// Section 4.3: the measured-bytes working-set limiter
//===----------------------------------------------------------------------===//

const char *ThreeTermSource = R"(
float f(float a, float b, float c, float v) {
  float cheap = a + a + a + a;
  float medium = sin(b) * cos(b);
  float costly = pow(a, b) * pow(b, c) + sqrt(a * b * c);
  return (cheap + v) * (medium + v) * (costly + v);
})";

TEST(ArenaLayout, WorkingSetLimiterFitsTheHotSetToTheLlcBound) {
  // Unlimited: three 4-byte slots, all hot.
  {
    auto Unit = parseUnit(ThreeTermSource);
    auto Spec = specializeAndCompile(*Unit, "f", {"v"});
    ASSERT_TRUE(Spec.has_value());
    EXPECT_EQ(Spec->Spec.Layout.hotBytes(), 12u);
  }

  // A bound of 8 bytes/pixel worth of LLC across 1000 arena pixels must
  // evict hot terms until the streamed working set fits.
  VM Machine;
  std::vector<Value> Args = {Value::makeFloat(1.3f), Value::makeFloat(2.1f),
                             Value::makeFloat(0.7f), Value::makeFloat(5.0f)};
  auto Reference = parseUnit(ThreeTermSource);
  auto Baseline = compileFunction(*Reference, "f");
  auto Expected = Machine.run(*Baseline, Args);
  ASSERT_TRUE(Expected.ok());

  // 8K and 4K bounds force partial evictions; a 1-byte bound (the
  // smallest still-enabled value — zero disables the pass) empties the
  // hot set entirely.
  for (uint64_t Bound : {8000u, 4000u, 1u}) {
    auto Unit = parseUnit(ThreeTermSource);
    SpecializerOptions Options;
    Options.LlcByteBound = Bound;
    Options.ArenaPixels = 1000;
    auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
    ASSERT_TRUE(Spec.has_value());
    EXPECT_LE(static_cast<uint64_t>(Spec->Spec.Layout.hotBytes()) * 1000,
              Bound)
        << "bound " << Bound << "B";

    Cache Slots;
    auto Load = Machine.run(Spec->LoaderChunk, Args, &Slots);
    auto Read = Machine.run(Spec->ReaderChunk, Args, &Slots);
    ASSERT_TRUE(Load.ok()) << Load.TrapMessage;
    ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
    EXPECT_TRUE(Read.Result.equals(Expected.Result))
        << "bound " << Bound << "B changed results";
  }

  // A bound the natural working set already fits is a no-op.
  auto Unit = parseUnit(ThreeTermSource);
  SpecializerOptions Options;
  Options.LlcByteBound = 1u << 20;
  Options.ArenaPixels = 1000;
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());
  EXPECT_EQ(Spec->Spec.Layout.hotBytes(), 12u);
  EXPECT_EQ(Spec->Spec.Stats.LimiterVictims, 0u);
}

//===----------------------------------------------------------------------===//
// Policy helpers: names, detection, candidates, measured argmin
//===----------------------------------------------------------------------===//

TEST(ArenaLayout, NamesRoundTripAndAutoIsNotALayout) {
  for (ArenaLayout L : {ArenaLayout::PixelMajor, ArenaLayout::SlotMajor,
                        ArenaLayout::TileBlocked}) {
    auto Parsed = parseArenaLayout(arenaLayoutName(L));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(*Parsed, L);
  }
  EXPECT_FALSE(parseArenaLayout("auto").has_value());
  EXPECT_FALSE(parseArenaLayout("").has_value());
  EXPECT_FALSE(parseArenaLayout("soa").has_value());
}

TEST(ArenaLayout, LlcDetectionNeverReportsZero) {
  EXPECT_GT(detectLlcBytes(), 0u);
  EXPECT_GT(detectLlcBytes(123), 0u);
}

TEST(ArenaLayout, CandidateSetsMatchTierConstraints) {
  // Native must not be offered a mapped arena: it would deopt per chunk
  // and the measurement would grade the deopt path.
  auto Native = arenaLayoutCandidates(ExecTier::Native, 128);
  ASSERT_EQ(Native.size(), 1u);
  EXPECT_EQ(Native[0], ArenaLayoutConfig{});

  for (ExecTier Tier :
       {ExecTier::Switch, ExecTier::Threaded, ExecTier::Batched}) {
    auto Set = arenaLayoutCandidates(Tier, 128);
    ASSERT_GE(Set.size(), 2u) << execTierName(Tier);
    // Identity first: ties break toward the map-free arrangement.
    EXPECT_EQ(Set[0], ArenaLayoutConfig{}) << execTierName(Tier);
    for (const ArenaLayoutConfig &Cfg : Set) {
      if (Cfg.Layout == ArenaLayout::TileBlocked) {
        EXPECT_EQ(Cfg.TilePixels % 128, 0u)
            << execTierName(Tier)
            << ": blocks must stay a multiple of the engine tile";
      }
    }
  }
}

TEST(ArenaLayout, PickArenaLayoutAppliesHysteresis) {
  auto Set = arenaLayoutCandidates(ExecTier::Batched, 128);
  ASSERT_GE(Set.size(), 2u);

  // Within 2% of the incumbent: the earlier, simpler candidate stays.
  auto Within = pickArenaLayout(Set, [&](const ArenaLayoutConfig &Cfg) {
    return Cfg == Set[1] ? 0.99 : 1.0;
  });
  EXPECT_EQ(Within, Set[0]);

  // A clear winner displaces it.
  auto Clear = pickArenaLayout(Set, [&](const ArenaLayoutConfig &Cfg) {
    return Cfg == Set[1] ? 0.90 : 1.0;
  });
  EXPECT_EQ(Clear, Set[1]);

  // Exact ties across the board keep the first candidate.
  auto Tie =
      pickArenaLayout(Set, [](const ArenaLayoutConfig &) { return 1.0; });
  EXPECT_EQ(Tie, Set[0]);

  // An empty candidate list degrades to the identity.
  EXPECT_EQ(pickArenaLayout({}, [](const ArenaLayoutConfig &) { return 1.0; }),
            ArenaLayoutConfig{});
}

//===----------------------------------------------------------------------===//
// Serde: reuse weights across processes
//===----------------------------------------------------------------------===//

TEST(ArenaLayout, LayoutSerdeCarriesReuseWeights) {
  CacheLayout Layout = threeSlotShape();
  ByteWriter Writer;
  serializeLayout(Writer, Layout);

  ByteReader Reader(Writer.bytes());
  CacheLayout Back;
  std::string Error;
  ASSERT_TRUE(deserializeLayout(Reader, Back, Error)) << Error;
  ASSERT_EQ(Back.slotCount(), Layout.slotCount());
  EXPECT_EQ(Back.totalBytes(), Layout.totalBytes());
  EXPECT_EQ(Back.hotBytes(), Layout.hotBytes());
  for (unsigned I = 0; I < Back.slotCount(); ++I) {
    EXPECT_EQ(Back.slot(I).Offset, Layout.slot(I).Offset);
    EXPECT_FLOAT_EQ(Back.slot(I).ReuseWeight, Layout.slot(I).ReuseWeight);
  }
}

TEST(ArenaLayout, VersionOneLayoutsDecodeAllHot) {
  // Hand-build a version-1 payload: slots + total, no weights tail.
  CacheLayout Layout = threeSlotShape();
  ByteWriter Writer;
  Writer.writeU32(Layout.slotCount());
  for (const CacheSlot &Slot : Layout.slots()) {
    Writer.writeU8(static_cast<uint8_t>(Slot.SlotType.kind()));
    Writer.writeU32(Slot.Offset);
  }
  Writer.writeU32(Layout.totalBytes());

  ByteReader Reader(Writer.bytes());
  CacheLayout Back;
  std::string Error;
  ASSERT_TRUE(deserializeLayout(Reader, Back, Error, /*Version=*/1)) << Error;
  ASSERT_EQ(Back.slotCount(), Layout.slotCount());
  // Pre-weights payloads decode as "unknown" — treated hot, never packed.
  EXPECT_FALSE(Back.hasColdSlots());
  EXPECT_EQ(Back.hotBytes(), Back.totalBytes());
  for (unsigned I = 0; I < Back.slotCount(); ++I)
    EXPECT_LT(Back.slot(I).ReuseWeight, 0.0f);
}

} // namespace
