//===- tests/TestPolyvariant.cpp - Polyvariant specialization tests ----------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The polyvariant contract, end to end:
///
///  - VariantKey admissibility is bit-exact (0.0f pins, -0.0f stays
///    generic) and selection picks the most specific admissible variant;
///  - the property fold substitutes, folds, and settles branches without
///    ever changing observable behavior on admissible inputs;
///  - every variant of a set renders framebuffers bit-identical to the
///    generic reader (and the unspecialized original) on admissible
///    inputs, under every execution tier and thread count, with
///    deterministic cache arenas;
///  - the cross-variant Section 4.3 budget evicts whole low-benefit
///    variants before relabeling the generic layout;
///  - version-2 snapshots persist the variant set and warm-start it
///    bit-identically; version-1 files still load as generic-only;
///  - the service maps VariantPins requests onto variant-keyed cache
///    entries and serves them bit-identical to the plain pass.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "engine/RenderEngine.h"
#include "service/Protocol.h"
#include "service/Service.h"
#include "service/Transport.h"
#include "shading/ShaderGallery.h"
#include "shading/ShaderLab.h"
#include "snapshot/Snapshot.h"
#include "support/ByteStream.h"
#include "transform/ConstantFold.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace dspec;

namespace {

bool bitIdentical(const Value &A, const Value &B) {
  return A.Kind == B.Kind && A.I == B.I &&
         std::memcmp(A.F, B.F, sizeof(A.F)) == 0;
}

void expectSameImage(const Framebuffer &A, const Framebuffer &B,
                     const std::string &What) {
  ASSERT_EQ(A.width(), B.width());
  ASSERT_EQ(A.height(), B.height());
  for (unsigned Y = 0; Y < A.height(); ++Y)
    for (unsigned X = 0; X < A.width(); ++X)
      ASSERT_TRUE(bitIdentical(A.at(X, Y), B.at(X, Y)))
          << What << ": pixel " << X << "," << Y << " differs";
}

ArenaBuffer arenaBytes(const CacheArena &Arena) {
  return Arena.canonicalBytes();
}

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "dspec_" + Name;
}

std::vector<unsigned char> slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(In),
                                    std::istreambuf_iterator<char>());
}

uint32_t fileVersion(const std::string &Path) {
  std::vector<unsigned char> Bytes = slurp(Path);
  EXPECT_GE(Bytes.size(), 12u);
  return static_cast<uint32_t>(Bytes[8]) |
         static_cast<uint32_t>(Bytes[9]) << 8 |
         static_cast<uint32_t>(Bytes[10]) << 16 |
         static_cast<uint32_t>(Bytes[11]) << 24;
}

/// Controls where every pin of \p Key holds, everything else at the
/// shader defaults.
std::vector<float> admissibleControls(const ShaderInfo &Info,
                                      const VariantKey &Key) {
  std::vector<float> Controls = ShaderLab::defaultControls(Info);
  for (const VariantPin &Pin : Key.Pins)
    Controls[Pin.ParamIndex - ShaderInfo::NumPixelParams] =
        paramPropValue(Pin.Prop);
  return Controls;
}

constexpr ExecTier kTiers[] = {ExecTier::Switch, ExecTier::Threaded,
                               ExecTier::Batched};

/// A small branchy fragment in the engine's calling convention: `mode`
/// is a fixed parameter used only under a branch condition, so pinning
/// it settles the branch.
const char *BranchySource = R"(
vec3 branchy(vec2 uv, vec3 P, vec3 N, vec3 I, float gain, float mode) {
  vec3 base = N * 0.5 + vec3(0.5, 0.5, 0.5);
  float w = 0.0;
  if (mode > 0.5) {
    w = uv.x * gain + noise(P);
  } else {
    w = uv.y + gain * 0.25;
  }
  return base * (w + 1.0);
}
)";

//===----------------------------------------------------------------------===//
// VariantKey: canonical form, admissibility, selection
//===----------------------------------------------------------------------===//

TEST(VariantKey, CanonicalizeSortsAndDedups) {
  VariantKey Key;
  Key.Pins = {{7, ParamProp::PP_One},
              {4, ParamProp::PP_Zero},
              {7, ParamProp::PP_Zero}, // duplicate index: first kept
              {5, ParamProp::PP_One}};
  Key.canonicalize();
  ASSERT_EQ(Key.Pins.size(), 3u);
  EXPECT_EQ(Key.Pins[0].ParamIndex, 4u);
  EXPECT_EQ(Key.Pins[1].ParamIndex, 5u);
  EXPECT_EQ(Key.Pins[2].ParamIndex, 7u);
  EXPECT_EQ(Key.Pins[2].Prop, ParamProp::PP_One);
  EXPECT_EQ(Key.specificity(), 3u);
  EXPECT_FALSE(Key.isGeneric());

  VariantKey Generic;
  EXPECT_TRUE(Generic.isGeneric());
  EXPECT_NE(Key.hash(), Generic.hash());
}

TEST(VariantKey, AdmissibilityIsBitExact) {
  VariantKey Zero;
  Zero.Pins = {{4, ParamProp::PP_Zero}};
  VariantKey One;
  One.Pins = {{5, ParamProp::PP_One}};

  EXPECT_TRUE(Zero.admits({0.0f, 2.0f}, 4));
  EXPECT_TRUE(One.admits({0.0f, 1.0f}, 4));
  EXPECT_FALSE(Zero.admits({0.1f, 2.0f}, 4));
  EXPECT_FALSE(One.admits({0.0f, 1.0f + 1e-7f}, 4));
  // -0.0f == 0.0f numerically, but the contract is bit-equality: the
  // folded literal 0.0f would change downstream bit patterns (1/x,
  // copysign), so -0.0f must stay on the generic path.
  EXPECT_FALSE(Zero.admits({-0.0f, 2.0f}, 4));
  // Pins below FirstParam (per-pixel inputs) or past the vector never
  // admit.
  VariantKey Pixel;
  Pixel.Pins = {{2, ParamProp::PP_Zero}};
  EXPECT_FALSE(Pixel.admits({0.0f, 0.0f}, 4));
  VariantKey Past;
  Past.Pins = {{9, ParamProp::PP_Zero}};
  EXPECT_FALSE(Past.admits({0.0f, 0.0f}, 4));
  // The generic key admits everything.
  EXPECT_TRUE(VariantKey().admits({3.5f}, 4));
}

TEST(VariantKey, SelectionPicksMostSpecificAdmissible) {
  VariantKey Generic;
  VariantKey A; // p4=0
  A.Pins = {{4, ParamProp::PP_Zero}};
  VariantKey B; // p4=0, p5=1
  B.Pins = {{4, ParamProp::PP_Zero}, {5, ParamProp::PP_One}};
  std::vector<VariantKey> Keys = {Generic, A, B};

  auto Best = selectVariant(Keys, {0.0f, 1.0f}, 4);
  ASSERT_TRUE(Best.has_value());
  EXPECT_EQ(*Best, 2u); // both pins hold: the two-pin key wins

  Best = selectVariant(Keys, {0.0f, 0.5f}, 4);
  ASSERT_TRUE(Best.has_value());
  EXPECT_EQ(*Best, 1u); // only p4=0 holds

  Best = selectVariant(Keys, {2.0f, 1.0f}, 4);
  ASSERT_TRUE(Best.has_value());
  EXPECT_EQ(*Best, 0u); // only the generic admits

  // Ties break toward the earlier key.
  std::vector<VariantKey> Tie = {A, A};
  Best = selectVariant(Tie, {0.0f}, 4);
  ASSERT_TRUE(Best.has_value());
  EXPECT_EQ(*Best, 0u);
}

TEST(VariantKey, LabelsNameTheParameters) {
  std::vector<std::string> Names = {"gain", "mode"};
  VariantKey Key;
  Key.Pins = {{4, ParamProp::PP_Zero}, {5, ParamProp::PP_One}};
  EXPECT_EQ(Key.label(Names, 4), "gain=0,mode=1");
  EXPECT_EQ(VariantKey().label(Names, 4), "generic");
}

TEST(VariantKey, ProposalPinsVaryingParametersFirst) {
  auto Unit = parseUnit(BranchySource);
  ASSERT_TRUE(Unit->ok()) << Unit->Diags.str();
  Function *F = Unit->Prog->findFunction("branchy");
  ASSERT_NE(F, nullptr);

  auto Keys = proposeVariantKeys(F, {"gain"}, 8);
  ASSERT_GE(Keys.size(), 2u);
  // The first proposals pin the varying parameter (index 4): that is
  // where the reader savings are.
  VarDecl *Gain = F->findParam("gain");
  ASSERT_NE(Gain, nullptr);
  EXPECT_EQ(Keys[0].Pins.size(), 1u);
  EXPECT_EQ(Keys[0].Pins[0].ParamIndex, 4u);
  EXPECT_EQ(Keys[1].Pins[0].ParamIndex, 4u);
  // `mode` only appears under a branch condition; it is proposed after
  // the varying pins.
  bool SawMode = false;
  for (const VariantKey &K : Keys)
    for (const VariantPin &Pin : K.Pins)
      SawMode |= Pin.ParamIndex == 5u;
  EXPECT_TRUE(SawMode);
}

//===----------------------------------------------------------------------===//
// The property fold
//===----------------------------------------------------------------------===//

TEST(PropertyFold, SubstitutesFoldsAndSettles) {
  auto Unit = parseUnit(BranchySource);
  ASSERT_TRUE(Unit->ok()) << Unit->Diags.str();
  Function *F = Unit->Prog->findFunction("branchy");
  VarDecl *Mode = F->findParam("mode");
  ASSERT_NE(Mode, nullptr);

  ConstantFoldStats Stats =
      constantFoldWithPins(F, Unit->Ctx, {{Mode, 0.0f}});
  EXPECT_GT(Stats.SubstitutedRefs, 0u);
  EXPECT_GT(Stats.FoldedExprs, 0u); // 0.0 > 0.5 folds
  EXPECT_EQ(Stats.SettledBranches, 1u); // the if settles to the else arm
}

TEST(PropertyFold, FoldedFragmentStaysBitIdenticalOnAdmissibleInputs) {
  auto Folded = parseUnit(BranchySource);
  auto Original = parseUnit(BranchySource);
  ASSERT_TRUE(Folded->ok() && Original->ok());
  Function *F = Folded->Prog->findFunction("branchy");
  constantFoldWithPins(F, Folded->Ctx,
                       {{F->findParam("mode"), 0.0f}});

  auto FoldedChunk = compileFunction(*Folded, "branchy");
  auto OriginalChunk = compileFunction(*Original, "branchy");
  ASSERT_TRUE(FoldedChunk && OriginalChunk);

  RenderGrid Grid(8, 6);
  RenderEngine Engine(1);
  Framebuffer A(8, 6), B(8, 6);
  // mode = 0.0 (the pin), gain swept: outputs must agree bit for bit.
  for (float Gain : {0.0f, 0.75f, -2.5f}) {
    ASSERT_TRUE(Engine.plainPass(*OriginalChunk, Grid, {Gain, 0.0f}, &A))
        << Engine.lastTrap();
    ASSERT_TRUE(Engine.plainPass(*FoldedChunk, Grid, {Gain, 0.0f}, &B))
        << Engine.lastTrap();
    expectSameImage(A, B, "gain=" + std::to_string(Gain));
  }
}

TEST(PropertyFold, SkipsReassignedParameters) {
  auto Unit = parseUnit("float f(float p) {\n"
                        "  p = p + 1.0;\n"
                        "  return p * 2.0;\n"
                        "}");
  ASSERT_TRUE(Unit->ok()) << Unit->Diags.str();
  Function *F = Unit->Prog->findFunction("f");
  ConstantFoldStats Stats =
      constantFoldWithPins(F, Unit->Ctx, {{F->findParam("p"), 0.0f}});
  // The parameter is reassigned, so pinning it would be unsound; nothing
  // is substituted.
  EXPECT_EQ(Stats.SubstitutedRefs, 0u);
}

//===----------------------------------------------------------------------===//
// Variant sets and the cross-variant Section 4.3 budget
//===----------------------------------------------------------------------===//

TEST(VariantSet, GenericComesFirstAndPinnedReadersShrink) {
  const ShaderInfo *Info = findShader("marble");
  ASSERT_NE(Info, nullptr);
  auto Unit = parseUnit(Info->Source);
  ASSERT_TRUE(Unit->ok());
  auto Set = specializeAndCompileVariants(*Unit, Info->Name,
                                          {Info->Controls[0].Name});
  ASSERT_TRUE(Set.has_value()) << Unit->Diags.str();
  ASSERT_GE(Set->Variants.size(), 2u);
  EXPECT_TRUE(Set->Variants[0].Key.isGeneric());
  EXPECT_EQ(Set->Variants[0].Label, "generic");
  EXPECT_FALSE(Set->Table.empty());

  const SpecializationStats &Generic = Set->Variants[0].Compiled.Spec.Stats;
  for (size_t I = 1; I < Set->Variants.size(); ++I) {
    const CompiledVariant &V = Set->Variants[I];
    EXPECT_FALSE(V.Key.isGeneric());
    EXPECT_GT(V.PredictedBenefit, 0.0) << V.Label;
    // Pinning the varying control collapses its dependence cone into the
    // cache: the variant reader does strictly less work.
    EXPECT_LT(V.Compiled.Spec.Stats.ReaderTerms, Generic.ReaderTerms)
        << V.Label;
  }
}

TEST(VariantSet, BudgetEvictsWholeVariantsBeforeRelabeling) {
  const ShaderInfo *Info = findShader("marble");
  auto Unit = parseUnit(Info->Source);
  ASSERT_TRUE(Unit->ok());

  // Unlimited: measure the natural footprint.
  auto Full = specializeAndCompileVariants(*Unit, Info->Name,
                                           {Info->Controls[0].Name});
  ASSERT_TRUE(Full.has_value());
  ASSERT_GE(Full->Variants.size(), 2u);
  const unsigned GenericBytes =
      Full->Variants[0].Compiled.Spec.Layout.totalBytes();

  // A budget that fits the generic variant but not the whole set: whole
  // variants are evicted, the generic layout is untouched.
  VariantSetOptions VOptions;
  VOptions.TotalCacheByteLimit = Full->TotalCacheBytes - 1;
  auto Squeezed = specializeAndCompileVariants(
      *Unit, Info->Name, {Info->Controls[0].Name}, {}, VOptions);
  ASSERT_TRUE(Squeezed.has_value());
  EXPECT_GT(Squeezed->VariantsEvicted, 0u);
  EXPECT_LE(Squeezed->TotalCacheBytes, *VOptions.TotalCacheByteLimit);
  EXPECT_LT(Squeezed->Variants.size(), Full->Variants.size());
  EXPECT_TRUE(Squeezed->Variants[0].Key.isGeneric());
  EXPECT_EQ(Squeezed->Variants[0].Compiled.Spec.Layout.totalBytes(),
            GenericBytes);

  // A budget below even the generic footprint: every pinned variant goes,
  // then the classic single-variant Section 4.3 relabeling kicks in.
  ASSERT_GT(GenericBytes, 4u);
  VOptions.TotalCacheByteLimit = GenericBytes - 4;
  auto Tiny = specializeAndCompileVariants(
      *Unit, Info->Name, {Info->Controls[0].Name}, {}, VOptions);
  ASSERT_TRUE(Tiny.has_value());
  ASSERT_EQ(Tiny->Variants.size(), 1u);
  EXPECT_TRUE(Tiny->Variants[0].Key.isGeneric());
  EXPECT_LE(Tiny->Variants[0].Compiled.Spec.Layout.totalBytes(),
            *VOptions.TotalCacheByteLimit);
  EXPECT_LE(Tiny->TotalCacheBytes, *VOptions.TotalCacheByteLimit);
}

TEST(VariantSet, ExplicitKeysAreBuiltVerbatimAndValidated) {
  auto Unit = parseUnit(BranchySource);
  ASSERT_TRUE(Unit->ok());

  VariantSetOptions VOptions;
  VariantKey Mode0;
  Mode0.Pins = {{5, ParamProp::PP_Zero}}; // mode=0
  VOptions.ExplicitKeys = {Mode0};
  auto Set =
      specializeAndCompileVariants(*Unit, "branchy", {"gain"}, {}, VOptions);
  ASSERT_TRUE(Set.has_value()) << Unit->Diags.str();
  ASSERT_EQ(Set->Variants.size(), 2u);
  EXPECT_EQ(Set->Variants[1].Label, "mode=0");
  // The pinned branch settles in this variant.
  EXPECT_EQ(Set->Variants[1].Fold.SettledBranches, 1u);
  EXPECT_LT(Set->Variants[1].Compiled.Spec.Stats.ReaderBranchStmts +
                Set->Variants[1].Compiled.Spec.Stats.LoaderBranchStmts,
            Set->Variants[0].Compiled.Spec.Stats.ReaderBranchStmts +
                Set->Variants[0].Compiled.Spec.Stats.LoaderBranchStmts);

  // A pin on a non-float (per-pixel) parameter is invalid.
  VariantKey Bad;
  Bad.Pins = {{1, ParamProp::PP_Zero}}; // P: vec3
  VOptions.ExplicitKeys = {Bad};
  EXPECT_FALSE(
      specializeAndCompileVariants(*Unit, "branchy", {"gain"}, {}, VOptions)
          .has_value());

  // So is a pin past the parameter list.
  VariantKey Past;
  Past.Pins = {{17, ParamProp::PP_One}};
  VOptions.ExplicitKeys = {Past};
  EXPECT_FALSE(
      specializeAndCompileVariants(*Unit, "branchy", {"gain"}, {}, VOptions)
          .has_value());
}

//===----------------------------------------------------------------------===//
// The differential harness: every variant x tier x thread count
//===----------------------------------------------------------------------===//

/// For every variant of \p Set: render at the variant's admissible
/// controls and demand bit-identical framebuffers against the generic
/// reader AND the unspecialized original, under every execution tier and
/// thread count, with a bit-identical arena everywhere.
void runDifferential(const CompiledVariantSet &Set, const Chunk &Original,
                     const std::vector<float> &DefaultControls,
                     const std::string &What) {
  RenderGrid Grid(16, 12);
  for (const CompiledVariant &V : Set.Variants) {
    std::vector<float> Controls = DefaultControls;
    for (const VariantPin &Pin : V.Key.Pins)
      Controls[Pin.ParamIndex - RenderEngine::NumPixelParams] =
          paramPropValue(Pin.Prop);
    ASSERT_TRUE(V.Key.admits(Controls, RenderEngine::NumPixelParams));

    // References at switch@1: the unspecialized original and the generic
    // reader, plus this variant's arena.
    RenderEngine Ref(1);
    Ref.setExecTier(ExecTier::Switch);
    Framebuffer Plain(Grid.width(), Grid.height());
    ASSERT_TRUE(Ref.plainPass(Original, Grid, Controls, &Plain))
        << What << "/" << V.Label << ": " << Ref.lastTrap();

    const CompiledVariant &Generic = Set.Variants[0];
    CacheArena GenericArena;
    Framebuffer GenericFrame(Grid.width(), Grid.height());
    ASSERT_TRUE(Ref.loaderPass(Generic.Compiled.LoaderChunk,
                               Generic.Compiled.Spec.Layout, Grid, Controls,
                               GenericArena));
    ASSERT_TRUE(Ref.readerPass(Generic.Compiled.ReaderChunk, Grid, Controls,
                               GenericArena, &GenericFrame));
    expectSameImage(Plain, GenericFrame, What + "/" + V.Label + " generic");

    CacheArena RefArena;
    ASSERT_TRUE(Ref.loaderPass(V.Compiled.LoaderChunk, V.Compiled.Spec.Layout,
                               Grid, Controls, RefArena));
    const ArenaBuffer RefBytes = arenaBytes(RefArena);

    for (ExecTier Tier : kTiers) {
      for (unsigned Threads : {1u, 4u}) {
        RenderEngine Engine(Threads);
        Engine.setExecTier(Tier);
        CacheArena Arena;
        Framebuffer Loaded(Grid.width(), Grid.height());
        Framebuffer Frame(Grid.width(), Grid.height());
        const std::string Tag = What + "/" + V.Label + " tier " +
                                execTierName(Tier) + " @" +
                                std::to_string(Threads) + "t";
        ASSERT_TRUE(Engine.loaderPass(V.Compiled.LoaderChunk,
                                      V.Compiled.Spec.Layout, Grid, Controls,
                                      Arena, &Loaded))
            << Tag << ": " << Engine.lastTrap();
        EXPECT_EQ(arenaBytes(Arena), RefBytes) << Tag << ": arena differs";
        // The loader computes the full result too.
        expectSameImage(Plain, Loaded, Tag + " (loader)");
        ASSERT_TRUE(Engine.readerPass(V.Compiled.ReaderChunk, Grid, Controls,
                                      Arena, &Frame))
            << Tag << ": " << Engine.lastTrap();
        expectSameImage(Plain, Frame, Tag + " (reader)");
      }
    }
  }
}

TEST(PolyvariantDifferential, GalleryVariantsMatchEverywhere) {
  for (const char *Name : {"marble", "stripes"}) {
    const ShaderInfo *Info = findShader(Name);
    ASSERT_NE(Info, nullptr);
    auto Unit = parseUnit(Info->Source);
    ASSERT_TRUE(Unit->ok());
    auto Set = specializeAndCompileVariants(*Unit, Info->Name,
                                            {Info->Controls[0].Name});
    ASSERT_TRUE(Set.has_value()) << Unit->Diags.str();
    ASSERT_GE(Set->Variants.size(), 2u) << Name;
    runDifferential(*Set, Set->Variants[0].Compiled.OriginalChunk,
                    ShaderLab::defaultControls(*Info), Name);
  }
}

TEST(PolyvariantDifferential, BranchyFragmentMatchesEverywhere) {
  auto Unit = parseUnit(BranchySource);
  ASSERT_TRUE(Unit->ok());
  VariantSetOptions VOptions;
  VOptions.MaxVariants = 6; // room for gain pins and the mode pins
  auto Set =
      specializeAndCompileVariants(*Unit, "branchy", {"gain"}, {}, VOptions);
  ASSERT_TRUE(Set.has_value()) << Unit->Diags.str();
  ASSERT_GE(Set->Variants.size(), 3u);
  runDifferential(*Set, Set->Variants[0].Compiled.OriginalChunk,
                  {0.6f, 0.7f}, "branchy");
}

//===----------------------------------------------------------------------===//
// Snapshot: version 2 round trip, version 1 backward compatibility
//===----------------------------------------------------------------------===//

/// Builds the marble variant set, runs every loader over \p Grid, and
/// saves a snapshot with the variant payload. Returns the compiled set.
CompiledVariantSet buildAndSaveV2(const ShaderInfo &Info,
                                  const RenderGrid &Grid,
                                  const std::string &Path) {
  auto Unit = parseUnit(Info.Source);
  EXPECT_TRUE(Unit->ok());
  auto Set = specializeAndCompileVariants(*Unit, Info.Name,
                                          {Info.Controls[0].Name});
  EXPECT_TRUE(Set.has_value()) << Unit->Diags.str();
  auto Controls = ShaderLab::defaultControls(Info);

  RenderEngine Engine(1);
  const CompiledVariant &Generic = Set->Variants[0];
  CacheArena GenericArena;
  EXPECT_TRUE(Engine.loaderPass(Generic.Compiled.LoaderChunk,
                                Generic.Compiled.Spec.Layout, Grid, Controls,
                                GenericArena));

  std::vector<SnapshotVariant> SnapVariants;
  for (CompiledVariant &V : Set->Variants) {
    if (V.Key.isGeneric())
      continue;
    SnapshotVariant SV;
    SV.Key = V.Key;
    SV.Label = V.Label;
    SV.Layout = V.Compiled.Spec.Layout;
    SV.Loader = V.Compiled.LoaderChunk;
    SV.Reader = V.Compiled.ReaderChunk;
    CacheArena Arena;
    EXPECT_TRUE(
        Engine.loaderPass(SV.Loader, SV.Layout, Grid, Controls, Arena));
    SV.ArenaPixels = Arena.pixelCount();
    SV.ArenaStride = Arena.strideBytes();
    SV.ArenaBytes = arenaBytes(Arena);
    SnapVariants.push_back(std::move(SV));
  }
  EXPECT_FALSE(SnapVariants.empty());

  SnapshotMeta Meta = SnapshotMeta::fromOptions({});
  Meta.FragmentName = Info.Name;
  Meta.VaryingParams = {Info.Controls[0].Name};
  Meta.GridWidth = Grid.width();
  Meta.GridHeight = Grid.height();
  Meta.Controls = Controls;
  std::string Error;
  EXPECT_TRUE(RenderEngine::saveSnapshot(
      Path, Meta, Generic.Compiled.LoaderChunk, Generic.Compiled.ReaderChunk,
      Generic.Compiled.Spec.Layout, GenericArena, SnapVariants, &Error))
      << Error;
  return std::move(*Set);
}

TEST(PolyvariantSnapshot, V2RoundTripsWarmVariantsBitIdentically) {
  const ShaderInfo *Info = findShader("marble");
  ASSERT_NE(Info, nullptr);
  RenderGrid Grid(16, 12);
  const std::string Path = tempPath("variants.dsnap");
  CompiledVariantSet Set = buildAndSaveV2(*Info, Grid, Path);
  EXPECT_EQ(fileVersion(Path), 2u);

  std::string Error;
  auto Warm = RenderEngine::fromSnapshot(Path, &Error);
  ASSERT_TRUE(Warm.has_value()) << Error;
  ASSERT_EQ(Warm->Variants.size(), Set.Variants.size() - 1);

  for (const RenderEngine::WarmVariant &WV : Warm->Variants) {
    const CompiledVariant *Cold = Set.find(WV.Key);
    ASSERT_NE(Cold, nullptr) << WV.Label;
    EXPECT_EQ(WV.Label, Cold->Label);
    EXPECT_EQ(WV.Layout.totalBytes(), Cold->Compiled.Spec.Layout.totalBytes());
    EXPECT_EQ(WV.Arena.strideBytes(), WV.Layout.totalBytes());

    // The warm variant must be selected at its admissible controls and
    // render bit-identical to the in-process variant reader.
    std::vector<float> Controls = admissibleControls(*Info, WV.Key);
    auto Selected = Warm->selectVariant(Controls);
    ASSERT_TRUE(Selected.has_value()) << WV.Label;
    EXPECT_EQ(Warm->Variants[*Selected].Key, WV.Key);

    RenderEngine Engine(1);
    CacheArena ColdArena;
    Framebuffer ColdFrame(Grid.width(), Grid.height());
    ASSERT_TRUE(Engine.loaderPass(Cold->Compiled.LoaderChunk,
                                  Cold->Compiled.Spec.Layout, Grid, Controls,
                                  ColdArena));
    ASSERT_TRUE(Engine.readerPass(Cold->Compiled.ReaderChunk, Grid, Controls,
                                  ColdArena, &ColdFrame));
    for (unsigned Threads : {1u, 4u}) {
      RenderEngine WarmEngine(Threads);
      Framebuffer WarmFrame(Grid.width(), Grid.height());
      ASSERT_TRUE(WarmEngine.readerPass(WV.Reader, Warm->Grid, Controls,
                                        WV.Arena, &WarmFrame))
          << WV.Label << ": " << WarmEngine.lastTrap();
      expectSameImage(ColdFrame, WarmFrame,
                      WV.Label + " @" + std::to_string(Threads) + "t");
    }
  }

  // At defaults (no pin holds), selection falls back to the generic unit.
  auto Defaults = ShaderLab::defaultControls(*Info);
  bool AnyAdmits = false;
  for (const RenderEngine::WarmVariant &WV : Warm->Variants)
    AnyAdmits |= WV.Key.admits(Defaults, RenderEngine::NumPixelParams);
  if (!AnyAdmits) {
    EXPECT_FALSE(Warm->selectVariant(Defaults).has_value());
  }
  std::remove(Path.c_str());
}

TEST(PolyvariantSnapshot, VersionOneFilesStillLoadAsGenericOnly) {
  const ShaderInfo *Info = findShader("stripes");
  ASSERT_NE(Info, nullptr);
  RenderGrid Grid(12, 8);
  auto Unit = parseUnit(Info->Source);
  ASSERT_TRUE(Unit->ok());
  auto Spec =
      specializeAndCompile(*Unit, Info->Name, {Info->Controls[0].Name});
  ASSERT_TRUE(Spec.has_value());
  auto Controls = ShaderLab::defaultControls(*Info);

  RenderEngine Engine(1);
  CacheArena Arena;
  ASSERT_TRUE(Engine.loaderPass(Spec->LoaderChunk, Spec->Spec.Layout, Grid,
                                Controls, Arena));
  SnapshotMeta Meta = SnapshotMeta::fromOptions({});
  Meta.FragmentName = Info->Name;
  Meta.VaryingParams = {Info->Controls[0].Name};
  Meta.GridWidth = Grid.width();
  Meta.GridHeight = Grid.height();
  Meta.Controls = Controls;

  const std::string Path = tempPath("v1compat.dsnap");
  std::string Error;
  ASSERT_TRUE(RenderEngine::saveSnapshot(Path, Meta, Spec->LoaderChunk,
                                         Spec->ReaderChunk, Spec->Spec.Layout,
                                         Arena, &Error))
      << Error;
  EXPECT_EQ(fileVersion(Path), 2u);

  // A variant-free version-2 file is byte-identical to version 1 except
  // for the version field (the header carries no CRC), so rewriting it
  // yields a genuine pre-polyvariant file.
  {
    std::vector<unsigned char> Image = slurp(Path);
    ASSERT_GE(Image.size(), 12u);
    const uint32_t V1 = 1;
    std::memcpy(Image.data() + 8, &V1, sizeof(V1));
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(reinterpret_cast<const char *>(Image.data()),
              static_cast<std::streamsize>(Image.size()));
  }
  EXPECT_EQ(fileVersion(Path), 1u);

  auto Warm = RenderEngine::fromSnapshot(Path, &Error);
  ASSERT_TRUE(Warm.has_value()) << Error;
  EXPECT_TRUE(Warm->Variants.empty());
  EXPECT_FALSE(Warm->selectVariant(Controls).has_value());

  Framebuffer Cold(Grid.width(), Grid.height());
  Framebuffer WarmFrame(Grid.width(), Grid.height());
  ASSERT_TRUE(Engine.readerPass(Spec->ReaderChunk, Grid, Controls, Arena,
                                &Cold));
  ASSERT_TRUE(Engine.readerPass(Warm->Reader, Warm->Grid, Controls,
                                Warm->Arena, &WarmFrame));
  expectSameImage(Cold, WarmFrame, "v1 warm start");
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Protocol and service
//===----------------------------------------------------------------------===//

TEST(PolyvariantProtocol, VariantPinsRoundTripsAndOldFramesDecodeAsZero) {
  RenderRequest In;
  In.Shader = "marble";
  In.VariantPins = 3;
  ByteWriter W;
  encodeRenderRequest(W, In);

  ByteReader R(W.bytes());
  RenderRequest Out;
  std::string Error;
  ASSERT_TRUE(decodeRenderRequest(R, Out, &Error)) << Error;
  EXPECT_EQ(Out.VariantPins, 3u);

  // A frame from a pre-polyvariant client lacks the trailing field; it
  // must decode with VariantPins = 0, not fail.
  std::vector<unsigned char> Legacy = W.bytes();
  ASSERT_GE(Legacy.size(), 4u);
  Legacy.resize(Legacy.size() - 4);
  ByteReader LegacyReader(Legacy);
  RenderRequest LegacyOut;
  ASSERT_TRUE(decodeRenderRequest(LegacyReader, LegacyOut, &Error)) << Error;
  EXPECT_EQ(LegacyOut.VariantPins, 0u);
}

/// Renders \p Info with the unspecialized original — the ground truth a
/// service reply must match bit-for-bit.
Framebuffer plainReference(const ShaderInfo &Info, unsigned Width,
                           unsigned Height,
                           const std::vector<float> &Controls) {
  auto Unit = parseUnit(Info.Source);
  EXPECT_TRUE(Unit->ok()) << Unit->Diags.str();
  auto Plain = compileFunction(*Unit, Info.Name);
  EXPECT_TRUE(Plain.has_value());
  RenderGrid Grid(Width, Height);
  RenderEngine Engine(1);
  Framebuffer Out(Width, Height);
  EXPECT_TRUE(Engine.plainPass(*Plain, Grid, Controls, &Out))
      << Engine.lastTrap();
  return Out;
}

::testing::AssertionResult sameFrames(const Framebuffer &A,
                                      const Framebuffer &B) {
  if (A.width() != B.width() || A.height() != B.height())
    return ::testing::AssertionFailure() << "dimension mismatch";
  for (unsigned Y = 0; Y < A.height(); ++Y)
    for (unsigned X = 0; X < A.width(); ++X)
      if (std::memcmp(A.at(X, Y).F, B.at(X, Y).F, sizeof(A.at(X, Y).F)) != 0)
        return ::testing::AssertionFailure()
               << "pixel (" << X << "," << Y << ") differs";
  return ::testing::AssertionSuccess();
}

TEST(PolyvariantService, PinnedRequestsServeBitIdenticalFramesAndHitCache) {
  SpecializationService Service;
  const ShaderInfo *Info = findShader("marble");
  ASSERT_NE(Info, nullptr);

  RenderRequest Request;
  Request.Shader = Info->Name;
  Request.Width = 20;
  Request.Height = 12;
  Request.Controls = ShaderLab::defaultControls(*Info);
  Request.Controls[0] = 0.0f; // the varying control sits at a pin value
  Request.VariantPins = 4;

  RenderReply First = Service.render(Request);
  ASSERT_TRUE(First.ok()) << First.Error;
  EXPECT_FALSE(First.CacheHit);
  Framebuffer Reference =
      plainReference(*Info, 20, 12, Request.Controls);
  EXPECT_TRUE(sameFrames(First.toFramebuffer(), Reference));

  // The same pinned request again: a per-variant cache hit, same bits.
  RenderReply Second = Service.render(Request);
  ASSERT_TRUE(Second.ok()) << Second.Error;
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_TRUE(sameFrames(Second.toFramebuffer(), Reference));

  // An unpinned request at the same controls uses a distinct (generic)
  // unit but must produce the same bits.
  RenderRequest Unpinned = Request;
  Unpinned.VariantPins = 0;
  RenderReply Generic = Service.render(Unpinned);
  ASSERT_TRUE(Generic.ok()) << Generic.Error;
  EXPECT_FALSE(Generic.CacheHit);
  EXPECT_TRUE(sameFrames(Generic.toFramebuffer(), Reference));

  // Per-variant accounting: one non-generic variant with a miss and a
  // hit, the generic one with a miss.
  MetricsSnapshot Stats = Service.statsz();
  bool SawPinned = false, SawGeneric = false;
  for (const VariantStat &V : Stats.Variants) {
    if (V.Label == "generic") {
      SawGeneric = true;
      EXPECT_EQ(V.Misses, 1u);
    } else {
      SawPinned = true;
      EXPECT_EQ(V.Misses, 1u);
      EXPECT_EQ(V.Hits, 1u);
    }
  }
  EXPECT_TRUE(SawPinned);
  EXPECT_TRUE(SawGeneric);
}

TEST(PolyvariantService, ControlsOffThePinFallBackToGeneric) {
  SpecializationService Service;
  const ShaderInfo *Info = findShader("stripes");
  ASSERT_NE(Info, nullptr);

  RenderRequest Request;
  Request.Shader = Info->Name;
  Request.Width = 16;
  Request.Height = 10;
  Request.Controls = ShaderLab::defaultControls(*Info);
  // No control at bit-exact 0.0/1.0: even with pins allowed the request
  // canonicalizes to the generic variant. -0.0 must too.
  for (float &C : Request.Controls)
    if (C == 0.0f || C == 1.0f)
      C = 0.37f;
  Request.Controls[0] = -0.0f;
  Request.VariantPins = 4;

  RenderReply Reply = Service.render(Request);
  ASSERT_TRUE(Reply.ok()) << Reply.Error;
  EXPECT_TRUE(sameFrames(Reply.toFramebuffer(),
                         plainReference(*Info, 16, 10, Request.Controls)));
  MetricsSnapshot Stats = Service.statsz();
  ASSERT_EQ(Stats.Variants.size(), 1u);
  EXPECT_EQ(Stats.Variants[0].Label, "generic");
}

TEST(PolyvariantService, StatszJsonCarriesPerVariantCounters) {
  SpecializationService Service;
  const ShaderInfo *Info = findShader("marble");
  RenderRequest Request;
  Request.Shader = Info->Name;
  Request.Controls = ShaderLab::defaultControls(*Info);
  Request.Controls[0] = 1.0f;
  Request.VariantPins = 1;
  ASSERT_TRUE(Service.render(Request).ok());

  std::string Json = Service.statsz().toJson();
  EXPECT_NE(Json.find("\"variants\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"hits\""), std::string::npos) << Json;
  // The single allowed pin lands on the varying control.
  EXPECT_NE(Json.find(Info->Controls[0].Name + "=1"), std::string::npos)
      << Json;
}

} // namespace
