//===- tests/TestRenderEngine.cpp - Engine determinism tests ------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The render engine's contract: the framebuffer is bit-identical for
/// every thread count and tile size, the packed cache arena is exactly
/// one allocation of pixelCount x CacheLayout::totalBytes(), and traps
/// are reported deterministically (lowest pixel first).
///
//===----------------------------------------------------------------------===//

#include "engine/CacheArena.h"
#include "engine/RenderEngine.h"
#include "engine/ThreadPool.h"
#include "shading/ShaderLab.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace dspec;

namespace {

/// Exact bit equality, including NaN payloads and signed zeros — stricter
/// than Value::equals, because the determinism guarantee is about bits.
bool bitIdentical(const Value &A, const Value &B) {
  return A.Kind == B.Kind && A.I == B.I &&
         std::memcmp(A.F, B.F, sizeof(A.F)) == 0;
}

void expectSameImage(const Framebuffer &A, const Framebuffer &B,
                     const std::string &What) {
  ASSERT_EQ(A.width(), B.width());
  ASSERT_EQ(A.height(), B.height());
  for (unsigned Y = 0; Y < A.height(); ++Y)
    for (unsigned X = 0; X < A.width(); ++X)
      ASSERT_TRUE(bitIdentical(A.at(X, Y), B.at(X, Y)))
          << What << ": pixel " << X << "," << Y << " differs";
}

unsigned hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 4 : N;
}

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 4u);
  constexpr size_t Items = 1000;
  std::vector<std::atomic<int>> Hits(Items);
  Pool.parallelFor(Items, [&](unsigned Worker, size_t Item) {
    EXPECT_LT(Worker, Pool.workerCount());
    Hits[Item].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < Items; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "item " << I;
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.workerCount(), 1u);
  std::thread::id Caller = std::this_thread::get_id();
  size_t Ran = 0;
  Pool.parallelFor(17, [&](unsigned Worker, size_t) {
    EXPECT_EQ(Worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    ++Ran;
  });
  EXPECT_EQ(Ran, 17u);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool Pool(3);
  for (int Round = 0; Round < 5; ++Round) {
    std::atomic<size_t> Sum{0};
    Pool.parallelFor(100, [&](unsigned, size_t Item) {
      Sum.fetch_add(Item, std::memory_order_relaxed);
    });
    EXPECT_EQ(Sum.load(), 4950u) << "round " << Round;
  }
}

TEST(ThreadPool, RethrowsTileJobExceptionOnCaller) {
  ThreadPool Pool(4);
  std::atomic<size_t> Ran{0};
  EXPECT_THROW(
      Pool.parallelFor(100,
                       [&](unsigned, size_t Item) {
                         Ran.fetch_add(1, std::memory_order_relaxed);
                         if (Item == 13)
                           throw std::runtime_error("tile 13 failed");
                       }),
      std::runtime_error);
  // Remaining items were drained (not run), never abandoned: the pool is
  // quiescent, so no worker races the assertions below.
  EXPECT_LE(Ran.load(), 100u);
  EXPECT_GE(Ran.load(), 1u);
}

TEST(ThreadPool, LowestThrownItemIndexWins) {
  ThreadPool Pool(4);
  // Every item that runs throws; the caller must see the exception of the
  // lowest item index among those that actually threw, independent of
  // which worker's exception landed first.
  std::mutex ThrownMutex;
  std::vector<size_t> Thrown;
  try {
    Pool.parallelFor(64, [&](unsigned, size_t Item) {
      {
        std::lock_guard<std::mutex> Lock(ThrownMutex);
        Thrown.push_back(Item);
      }
      throw std::runtime_error("item " + std::to_string(Item));
    });
    FAIL() << "parallelFor swallowed the exception";
  } catch (const std::runtime_error &E) {
    ASSERT_FALSE(Thrown.empty());
    size_t Lowest = *std::min_element(Thrown.begin(), Thrown.end());
    EXPECT_STREQ(E.what(), ("item " + std::to_string(Lowest)).c_str());
  }
}

TEST(ThreadPool, UsableAfterAThrowingJob) {
  ThreadPool Pool(3);
  EXPECT_THROW(Pool.parallelFor(
                   10, [](unsigned, size_t) { throw std::logic_error("x"); }),
               std::logic_error);
  // The failure is fully reset: the next job runs normally.
  std::atomic<size_t> Sum{0};
  Pool.parallelFor(100, [&](unsigned, size_t Item) {
    Sum.fetch_add(Item, std::memory_order_relaxed);
  });
  EXPECT_EQ(Sum.load(), 4950u);
}

TEST(ThreadPool, SerialPoolPropagatesExceptionsToo) {
  ThreadPool Pool(1);
  size_t Ran = 0;
  EXPECT_THROW(Pool.parallelFor(10,
                                [&](unsigned, size_t Item) {
                                  ++Ran;
                                  if (Item == 3)
                                    throw std::out_of_range("boom");
                                }),
               std::out_of_range);
  EXPECT_EQ(Ran, 4u); // items past the throwing one are skipped
  Pool.parallelFor(5, [&](unsigned, size_t) { ++Ran; });
  EXPECT_EQ(Ran, 9u);
}

TEST(CacheArenaTest, SingleAllocationOfLayoutTimesPixels) {
  // The acceptance criterion: arena bytes == totalBytes() x pixelCount,
  // for every gallery shader's specialization.
  ShaderLab Lab(6, 5);
  for (const ShaderInfo &Info : shaderGallery()) {
    auto Spec = Lab.specializePartition(Info, 0);
    ASSERT_TRUE(Spec.has_value()) << Lab.lastError();
    auto Controls = ShaderLab::defaultControls(Info);
    ASSERT_TRUE(Spec->load(Lab.engine(), Lab.grid(), Controls));
    const CacheArena &Arena = Spec->arena();
    const CacheLayout &Layout = Spec->compiled().Spec.Layout;
    EXPECT_EQ(Arena.pixelCount(), Lab.grid().pixelCount()) << Info.Name;
    EXPECT_EQ(Arena.strideBytes(), Layout.totalBytes()) << Info.Name;
    EXPECT_EQ(Arena.totalBytes(),
              static_cast<size_t>(Layout.totalBytes()) *
                  Lab.grid().pixelCount())
        << Info.Name;
  }
}

TEST(CacheArenaTest, DecodeRoundTripsStoredSlots) {
  CacheLayout Layout;
  Layout.addSlot(Type(TypeKind::TK_Float));
  Layout.addSlot(Type(TypeKind::TK_Vec3));
  CacheArena Arena(3, Layout);
  EXPECT_EQ(Arena.totalBytes(), 3u * Layout.totalBytes());
  CacheView View = Arena.view(1);
  View.store(Layout.slot(0).Offset, Value::makeFloat(2.5f));
  View.store(Layout.slot(1).Offset, Value::makeVec3(1, -2, 3));
  std::vector<Value> Decoded = Arena.decode(1);
  ASSERT_EQ(Decoded.size(), 2u);
  EXPECT_TRUE(bitIdentical(Decoded[0], Value::makeFloat(2.5f)));
  EXPECT_TRUE(bitIdentical(Decoded[1], Value::makeVec3(1, -2, 3)));
  // Neighbouring pixels are untouched (zero-initialized).
  for (unsigned Pixel : {0u, 2u}) {
    std::vector<Value> Neighbour = Arena.decode(Pixel);
    ASSERT_EQ(Neighbour.size(), 2u);
    for (size_t S = 0; S < Neighbour.size(); ++S)
      EXPECT_TRUE(bitIdentical(Neighbour[S],
                               Value::zeroOf(Layout.slot(S).SlotType)))
          << "pixel " << Pixel << " slot " << S;
  }
}

/// Every gallery shader, all three passes, at 1 / 2 / hardware threads
/// and shrunken tiles: the images must be bit-identical to the serial
/// reference.
TEST(RenderEngineTest, FramebufferBitIdenticalAcrossThreadCounts) {
  const unsigned W = 9, H = 7;
  ShaderLab Lab(W, H);
  const unsigned MaxThreads = hardwareThreads();
  std::vector<RenderEngine> Engines;
  Engines.emplace_back(1);             // serial reference
  Engines.emplace_back(2);
  Engines.emplace_back(MaxThreads);
  Engines.emplace_back(MaxThreads, 1); // one-pixel tiles
  Engines.emplace_back(2, 5);          // tile size not dividing W*H

  for (const ShaderInfo &Info : shaderGallery()) {
    auto Spec = Lab.specializePartition(Info, 0);
    ASSERT_TRUE(Spec.has_value()) << Lab.lastError();
    auto Controls = ShaderLab::defaultControls(Info);

    Framebuffer LoadRef(W, H), ReadRef(W, H), PlainRef(W, H);
    ASSERT_TRUE(Spec->load(Engines[0], Lab.grid(), Controls, &LoadRef));
    Controls[0] = Info.Controls[0].SweepMax; // drag the varying control
    ASSERT_TRUE(Spec->readFrame(Engines[0], Lab.grid(), Controls, &ReadRef));
    ASSERT_TRUE(
        Spec->originalFrame(Engines[0], Lab.grid(), Controls, &PlainRef));

    for (size_t E = 1; E < Engines.size(); ++E) {
      RenderEngine &Engine = Engines[E];
      std::string Tag = Info.Name + " @" +
                        std::to_string(Engine.threadCount()) + "t/" +
                        std::to_string(Engine.tilePixels()) + "px";
      Controls = ShaderLab::defaultControls(Info);
      Framebuffer Load(W, H), Read(W, H), Plain(W, H);
      ASSERT_TRUE(Spec->load(Engine, Lab.grid(), Controls, &Load));
      Controls[0] = Info.Controls[0].SweepMax;
      ASSERT_TRUE(Spec->readFrame(Engine, Lab.grid(), Controls, &Read));
      ASSERT_TRUE(
          Spec->originalFrame(Engine, Lab.grid(), Controls, &Plain));
      expectSameImage(LoadRef, Load, "loader " + Tag);
      expectSameImage(ReadRef, Read, "reader " + Tag);
      expectSameImage(PlainRef, Plain, "original " + Tag);
    }
  }
}

/// Loading with one engine and reading with another is fine: the arena is
/// plain memory, not tied to the engine that filled it.
TEST(RenderEngineTest, ArenaIsPortableAcrossEngines) {
  ShaderLab Lab(5, 4);
  const ShaderInfo *Info = findShader("marble");
  auto Spec = Lab.specializePartition(*Info, 0);
  ASSERT_TRUE(Spec.has_value()) << Lab.lastError();
  auto Controls = ShaderLab::defaultControls(*Info);
  RenderEngine Serial(1), Threaded(4);
  ASSERT_TRUE(Spec->load(Threaded, Lab.grid(), Controls));
  Framebuffer A(5, 4), B(5, 4);
  Controls[0] = Info->Controls[0].SweepMax;
  ASSERT_TRUE(Spec->readFrame(Serial, Lab.grid(), Controls, &A));
  ASSERT_TRUE(Spec->readFrame(Threaded, Lab.grid(), Controls, &B));
  expectSameImage(A, B, "cross-engine read");
}

/// A chunk whose cache instruction reaches past the layout traps on every
/// pixel; the engine must report pixel 0 no matter how many threads race.
TEST(RenderEngineTest, TrapReportsLowestPixelAtEveryThreadCount) {
  Chunk Bad;
  Bad.Name = "bad";
  Bad.NumParams = 4;
  Bad.LocalTypes = {TypeKind::TK_Vec2, TypeKind::TK_Vec3, TypeKind::TK_Vec3,
                    TypeKind::TK_Vec3};
  Bad.ReturnType = Type(TypeKind::TK_Float);
  // Read a float at byte 96 of a 4-byte cache: out of bounds everywhere.
  Bad.Code = {{OpCode::OC_CacheLoad, 0, 96,
               static_cast<int32_t>(TypeKind::TK_Float)},
              {OpCode::OC_Return, 0, 0, 0}};
  Bad.CacheSlotCount = 1;
  Bad.CacheBytes = 4;

  CacheLayout Layout;
  Layout.addSlot(Type(TypeKind::TK_Float));
  RenderGrid Grid(8, 8);
  CacheArena Arena(Grid.pixelCount(), Layout);

  std::string FirstMessage;
  for (unsigned Threads : {1u, 2u, hardwareThreads()}) {
    RenderEngine Engine(Threads, 1);
    EXPECT_FALSE(
        Engine.readerPass(Bad, Grid, /*Controls=*/{}, Arena, nullptr));
    EXPECT_NE(Engine.lastTrap().find("pixel 0:"), std::string::npos)
        << Engine.lastTrap();
    if (FirstMessage.empty())
      FirstMessage = Engine.lastTrap();
    else
      EXPECT_EQ(Engine.lastTrap(), FirstMessage)
          << "trap message varies with " << Threads << " threads";
  }
}

/// The boxed compatibility path still works and now traps instead of
/// silently growing when a store lands past the layout.
TEST(RenderEngineTest, BoxedStorePastLayoutTraps) {
  Chunk Bad;
  Bad.Name = "boxed_bad";
  Bad.NumParams = 0;
  Bad.ReturnType = Type(TypeKind::TK_Float);
  Bad.Constants = {Value::makeFloat(1.0f)};
  // Store to slot 7 of a 1-slot cache.
  Bad.Code = {{OpCode::OC_Const, 0, 0, 0},
              {OpCode::OC_CacheStore, 7, 28,
               static_cast<int32_t>(TypeKind::TK_Float)},
              {OpCode::OC_Return, 0, 0, 0}};
  Bad.CacheSlotCount = 1;
  Bad.CacheBytes = 4;

  VM Machine;
  Cache Boxed;
  auto R = Machine.run(Bad, {}, &Boxed);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.TrapMessage.find("past the layout"), std::string::npos)
      << R.TrapMessage;
  EXPECT_EQ(Boxed.size(), 1u) << "trap must not grow the cache";
}

} // namespace
