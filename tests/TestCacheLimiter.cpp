//===- tests/TestCacheLimiter.cpp - Section 4.3 limiter tests -----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "shading/ShaderLab.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

// Each local feeds the varying part separately, so the frontier holds
// three independent slots (caching the maximal combined term is
// impossible: every combination involves v).
const char *ThreeSlotSource = R"(
float f(float a, float b, float c, float v) {
  float cheap = a + a + a + a;
  float medium = sin(b) * cos(b);
  float costly = pow(a, b) * pow(b, c) + sqrt(a * b * c);
  return (cheap + v) * (medium + v) * (costly + v);
})";

TEST(CacheLimiter, UnlimitedKeepsAll) {
  auto Unit = parseUnit(ThreeSlotSource);
  auto Spec = specializeAndCompile(*Unit, "f", {"v"});
  ASSERT_TRUE(Spec.has_value());
  EXPECT_EQ(Spec->Spec.Layout.slotCount(), 3u);
  EXPECT_EQ(Spec->Spec.Layout.totalBytes(), 12u);
  EXPECT_EQ(Spec->Spec.Stats.LimiterVictims, 0u);
}

TEST(CacheLimiter, EvictsCheapestFirst) {
  auto Unit = parseUnit(ThreeSlotSource);
  SpecializerOptions Options;
  Options.CacheByteLimit = 8;
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());
  EXPECT_LE(Spec->Spec.Layout.totalBytes(), 8u);
  std::string Reader = Spec->readerSource();
  // The cheap sum is recomputed; the expensive pow/sqrt mix stays cached.
  EXPECT_NE(Reader.find("a + a + a + a"), std::string::npos) << Reader;
  EXPECT_EQ(Reader.find("pow"), std::string::npos) << Reader;
}

TEST(CacheLimiter, ZeroBudgetEmptiesCache) {
  auto Unit = parseUnit(ThreeSlotSource);
  SpecializerOptions Options;
  Options.CacheByteLimit = 0;
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());
  EXPECT_EQ(Spec->Spec.Layout.totalBytes(), 0u);
  EXPECT_GT(Spec->Spec.Stats.LimiterVictims, 0u);
  // The reader recomputes everything: it contains the costly call again.
  EXPECT_NE(Spec->readerSource().find("pow"), std::string::npos);
}

TEST(CacheLimiter, EquivalenceAtEveryBudget) {
  // Property: limiting never changes results, only performance.
  auto Reference = parseUnit(ThreeSlotSource);
  auto Baseline = compileFunction(*Reference, "f");
  VM Machine;
  std::vector<Value> Args = {Value::makeFloat(1.3f), Value::makeFloat(2.1f),
                             Value::makeFloat(0.7f), Value::makeFloat(5.0f)};
  auto Expected = Machine.run(*Baseline, Args);
  ASSERT_TRUE(Expected.ok());

  for (unsigned Budget = 0; Budget <= 16; Budget += 4) {
    auto Unit = parseUnit(ThreeSlotSource);
    SpecializerOptions Options;
    Options.CacheByteLimit = Budget;
    auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
    ASSERT_TRUE(Spec.has_value());
    EXPECT_LE(Spec->Spec.Layout.totalBytes(), Budget);
    Cache Slots;
    auto Load = Machine.run(Spec->LoaderChunk, Args, &Slots);
    auto Read = Machine.run(Spec->ReaderChunk, Args, &Slots);
    ASSERT_TRUE(Load.ok()) << Load.TrapMessage;
    ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
    EXPECT_TRUE(Load.Result.equals(Expected.Result)) << "budget " << Budget;
    EXPECT_TRUE(Read.Result.equals(Expected.Result)) << "budget " << Budget;
  }
}

TEST(CacheLimiter, ReaderWorkGrowsAsBudgetShrinks) {
  VM Machine;
  std::vector<Value> Args = {Value::makeFloat(1.3f), Value::makeFloat(2.1f),
                             Value::makeFloat(0.7f), Value::makeFloat(5.0f)};
  uint64_t LastInstructions = 0;
  for (unsigned Budget : {12u, 8u, 4u, 0u}) {
    auto Unit = parseUnit(ThreeSlotSource);
    SpecializerOptions Options;
    Options.CacheByteLimit = Budget;
    auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
    ASSERT_TRUE(Spec.has_value());
    Cache Slots;
    Machine.run(Spec->LoaderChunk, Args, &Slots);
    auto Read = Machine.run(Spec->ReaderChunk, Args, &Slots);
    ASSERT_TRUE(Read.ok());
    EXPECT_GE(Read.InstructionsExecuted, LastInstructions)
        << "budget " << Budget;
    LastInstructions = Read.InstructionsExecuted;
  }
}

TEST(CacheLimiter, BudgetLargerThanNaturalIsNoop) {
  auto Unit = parseUnit(ThreeSlotSource);
  SpecializerOptions Options;
  Options.CacheByteLimit = 1000;
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());
  EXPECT_EQ(Spec->Spec.Layout.slotCount(), 3u);
  EXPECT_EQ(Spec->Spec.Stats.LimiterVictims, 0u);
}

TEST(CacheLimiter, VectorSlotsEvictable) {
  auto Unit = parseUnit(R"(
vec3 f(vec3 a, float v) {
  vec3 n = normalize(a);
  vec3 r = reflect(n, vec3(0.0, 1.0, 0.0));
  return (n + r) * v;
})");
  SpecializerOptions Options;
  Options.CacheByteLimit = 12; // room for one vec3, not two
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());
  EXPECT_LE(Spec->Spec.Layout.totalBytes(), 12u);
}

TEST(CacheLimiter, WeightBySizePrefersFatSlots) {
  // Two candidates: a 12-byte vec3 of moderate cost and a 4-byte float of
  // slightly lower cost. Unweighted eviction removes the float (lowest
  // cost); size-weighted eviction prefers reclaiming the vec3.
  const char *Source = R"(
vec3 f(vec3 a, float b, float v) {
  vec3 n = normalize(a) + cross(a, vec3(0.0, 1.0, 0.0));
  float s = sin(b) * cos(b) + sqrt(b);
  return n * s * v;
})";
  auto UnitA = parseUnit(Source);
  SpecializerOptions Plain;
  Plain.CacheByteLimit = 12;
  auto SpecPlain = specializeAndCompile(*UnitA, "f", {"v"}, Plain);
  ASSERT_TRUE(SpecPlain.has_value());

  auto UnitB = parseUnit(Source);
  SpecializerOptions Weighted = Plain;
  Weighted.WeightVictimBySize = true;
  auto SpecWeighted = specializeAndCompile(*UnitB, "f", {"v"}, Weighted);
  ASSERT_TRUE(SpecWeighted.has_value());

  EXPECT_LE(SpecWeighted->Spec.Layout.totalBytes(), 12u);
  EXPECT_LE(SpecPlain->Spec.Layout.totalBytes(), 12u);
}

TEST(CacheLimiter, GalleryShaderShrinksMonotonically) {
  // Property over a real shader: actual bytes never exceed the budget and
  // shrink monotonically with it.
  ShaderLab Lab(4, 4);
  const ShaderInfo *Info = findShader("rings");
  unsigned Last = ~0u;
  for (int Budget = 40; Budget >= 0; Budget -= 8) {
    SpecializerOptions Options;
    Options.CacheByteLimit = static_cast<unsigned>(Budget);
    auto Spec = Lab.specializePartition(*Info, 8, Options); // lightx
    ASSERT_TRUE(Spec.has_value()) << Lab.lastError();
    unsigned Bytes = Spec->compiled().Spec.Layout.totalBytes();
    EXPECT_LE(Bytes, static_cast<unsigned>(Budget));
    EXPECT_LE(Bytes, Last);
    Last = Bytes;
  }
}

class LimiterEquivalenceOnRings : public ::testing::TestWithParam<unsigned> {
};

TEST_P(LimiterEquivalenceOnRings, ReaderStillMatchesOriginal) {
  unsigned Budget = GetParam();
  ShaderLab Lab(5, 3);
  const ShaderInfo *Info = findShader("rings");
  SpecializerOptions Options;
  Options.CacheByteLimit = Budget;
  auto Spec = Lab.specializePartition(*Info, 3 /* ringscale */, Options);
  ASSERT_TRUE(Spec.has_value()) << Lab.lastError();

  RenderEngine &Engine = Lab.engine();
  auto Controls = ShaderLab::defaultControls(*Info);
  ASSERT_TRUE(Spec->load(Engine, Lab.grid(), Controls));
  Controls[3] = 9.5f; // drag ringscale
  Framebuffer FromReader(5, 3), Reference(5, 3);
  ASSERT_TRUE(Spec->readFrame(Engine, Lab.grid(), Controls, &FromReader));
  ASSERT_TRUE(
      Spec->originalFrame(Engine, Lab.grid(), Controls, &Reference));
  for (unsigned Y = 0; Y < 3; ++Y)
    for (unsigned X = 0; X < 5; ++X)
      EXPECT_TRUE(FromReader.at(X, Y).equals(Reference.at(X, Y)))
          << "budget " << Budget << " pixel " << X << "," << Y;
}

INSTANTIATE_TEST_SUITE_P(Budgets, LimiterEquivalenceOnRings,
                         ::testing::Values(0u, 4u, 8u, 12u, 16u, 20u, 24u,
                                           28u, 32u, 36u, 40u));

} // namespace
