//===- tests/TestCacheView.cpp - Packed cache view tests ---------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The packed cache contract: typed load/store round-trips for every
/// TypeKind at CacheLayout-computed offsets, inBounds edge cases, and
/// the VM's trap paths for cache accesses outside the layout — the
/// checks that make executing a deserialized (snapshot) chunk safe.
///
//===----------------------------------------------------------------------===//

#include "specialize/CacheLayout.h"
#include "vm/CacheView.h"
#include "vm/VM.h"

#include "gtest/gtest.h"

#include <cstring>
#include <limits>

using namespace dspec;

namespace {

bool bitIdentical(const Value &A, const Value &B) {
  return A.Kind == B.Kind && A.I == B.I &&
         std::memcmp(A.F, B.F, sizeof(A.F)) == 0;
}

TEST(CacheView, RoundTripsEveryKind) {
  // One slot of every storable kind, densely packed in layout order.
  const std::vector<Value> Samples = {
      Value::makeBool(true),
      Value::makeInt(-123456789),
      Value::makeFloat(3.25f),
      Value::makeVec2(1.5f, -2.5f),
      Value::makeVec3(0.125f, -0.25f, 1e9f),
      Value::makeVec4(-1.0f, 0.0f, 7.75f, -1e-9f),
  };
  CacheLayout Layout;
  for (const Value &V : Samples)
    Layout.addSlot(Type(V.Kind));
  EXPECT_EQ(Layout.totalBytes(), 4u + 4 + 4 + 8 + 12 + 16);

  std::vector<unsigned char> Buffer(Layout.totalBytes(), 0);
  CacheView View(Buffer.data(), static_cast<unsigned>(Buffer.size()));
  ASSERT_TRUE(View.valid());

  for (size_t I = 0; I < Samples.size(); ++I) {
    const CacheSlot &Slot = Layout.slot(static_cast<unsigned>(I));
    ASSERT_TRUE(View.inBounds(Slot.Offset, Slot.SlotType.kind()));
    View.store(Slot.Offset, Samples[I]);
  }
  // Read everything back only after all writes: a round-trip also
  // proves neighbouring slots were not clobbered.
  for (size_t I = 0; I < Samples.size(); ++I) {
    const CacheSlot &Slot = Layout.slot(static_cast<unsigned>(I));
    Value Loaded = View.load(Slot.Offset, Slot.SlotType.kind());
    if (Samples[I].Kind == TypeKind::TK_Bool ||
        Samples[I].Kind == TypeKind::TK_Int)
      EXPECT_EQ(Loaded.I, Samples[I].I) << "slot " << I;
    else
      EXPECT_EQ(std::memcmp(Loaded.F, Samples[I].F, sizeof(Loaded.F[0]) *
                                                        4),
                0)
          << "slot " << I;
    EXPECT_EQ(Loaded.Kind, Samples[I].Kind);
  }
}

TEST(CacheView, FloatBitsSurviveExactly) {
  // NaNs, infinities, and signed zero must round-trip bit-for-bit: the
  // snapshot's determinism guarantee rests on it.
  const float Specials[] = {0.0f, -0.0f,
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::quiet_NaN(),
                            std::numeric_limits<float>::denorm_min()};
  unsigned char Buffer[4];
  CacheView View(Buffer, sizeof(Buffer));
  for (float F : Specials) {
    View.store(0, Value::makeFloat(F));
    Value Loaded = View.load(0, TypeKind::TK_Float);
    uint32_t Want, Got;
    std::memcpy(&Want, &F, 4);
    std::memcpy(&Got, &Loaded.F[0], 4);
    EXPECT_EQ(Got, Want);
  }
}

TEST(CacheView, InBoundsEdges) {
  unsigned char Buffer[12] = {};
  CacheView View(Buffer, sizeof(Buffer));
  // Exact fits at the end of the buffer.
  EXPECT_TRUE(View.inBounds(8, TypeKind::TK_Float));
  EXPECT_TRUE(View.inBounds(0, TypeKind::TK_Vec3));
  EXPECT_TRUE(View.inBounds(4, TypeKind::TK_Vec2));
  // One byte past.
  EXPECT_FALSE(View.inBounds(9, TypeKind::TK_Float));
  EXPECT_FALSE(View.inBounds(1, TypeKind::TK_Vec3));
  EXPECT_FALSE(View.inBounds(0, TypeKind::TK_Vec4));
  EXPECT_FALSE(View.inBounds(12, TypeKind::TK_Float));
  // Void has no width and is never a valid slot.
  EXPECT_FALSE(View.inBounds(0, TypeKind::TK_Void));

  CacheView Empty(static_cast<unsigned char *>(nullptr), 0);
  EXPECT_TRUE(Empty.valid());
  EXPECT_FALSE(Empty.inBounds(0, TypeKind::TK_Float));
  EXPECT_FALSE(CacheView().inBounds(0, TypeKind::TK_Bool));
}

//===----------------------------------------------------------------------===//
// VM trap paths for out-of-layout cache accesses
//===----------------------------------------------------------------------===//

/// A chunk that stores constant #0 to (offset, kind), loads it back, and
/// returns it.
Chunk storeLoadChunk(Value Constant, unsigned Offset, TypeKind Kind,
                     unsigned CacheBytes) {
  Chunk C;
  C.Name = "cachetest";
  C.Constants.push_back(Constant);
  C.Code.push_back({OpCode::OC_Const, 0, 0, 0});
  C.Code.push_back({OpCode::OC_CacheStore, 0, static_cast<int32_t>(Offset),
                    static_cast<int32_t>(Kind)});
  C.Code.push_back({OpCode::OC_Pop, 0, 0, 0});
  C.Code.push_back({OpCode::OC_CacheLoad, 0, static_cast<int32_t>(Offset),
                    static_cast<int32_t>(Kind)});
  C.Code.push_back({OpCode::OC_Return, 0, 0, 0});
  C.ReturnType = Type(Kind);
  C.CacheSlotCount = 1;
  C.CacheBytes = CacheBytes;
  return C;
}

TEST(CacheViewVM, PackedStoreLoadRoundTrip) {
  Chunk C = storeLoadChunk(Value::makeVec3(1, -2, 3), 4, TypeKind::TK_Vec3,
                           16);
  unsigned char Buffer[16] = {};
  VM Machine;
  auto R = Machine.run(C, {}, CacheView(Buffer, sizeof(Buffer)));
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_TRUE(bitIdentical(R.Result, Value::makeVec3(1, -2, 3)));
}

TEST(CacheViewVM, StorePastTheViewTraps) {
  // The chunk claims 16 cache bytes but the caller's view is smaller:
  // every access must be bounds-checked against the *view*, not trusted
  // metadata — exactly the situation a hostile snapshot could set up.
  Chunk C = storeLoadChunk(Value::makeVec3(1, 2, 3), 8, TypeKind::TK_Vec3,
                           16);
  unsigned char Buffer[12] = {};
  VM Machine;
  auto R = Machine.run(C, {}, CacheView(Buffer, sizeof(Buffer)));
  ASSERT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMessage.find("cache store past the layout"),
            std::string::npos)
      << R.TrapMessage;
}

TEST(CacheViewVM, LoadPastTheViewTraps) {
  Chunk C;
  C.Name = "oobload";
  C.Code.push_back({OpCode::OC_CacheLoad, 0, 8,
                    static_cast<int32_t>(TypeKind::TK_Vec2)});
  C.Code.push_back({OpCode::OC_Return, 0, 0, 0});
  C.ReturnType = Type(TypeKind::TK_Vec2);
  C.CacheSlotCount = 1;
  C.CacheBytes = 16;
  unsigned char Buffer[12] = {};
  VM Machine;
  auto R = Machine.run(C, {}, CacheView(Buffer, sizeof(Buffer)));
  ASSERT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMessage.find("cache read past the layout"),
            std::string::npos)
      << R.TrapMessage;
}

TEST(CacheViewVM, StoreKindMismatchTraps) {
  // Slot says vec3, the stored value is a float: the packed path must
  // refuse rather than write a partial slot.
  Chunk C = storeLoadChunk(Value::makeFloat(1.0f), 0, TypeKind::TK_Vec3, 12);
  unsigned char Buffer[12] = {};
  VM Machine;
  auto R = Machine.run(C, {}, CacheView(Buffer, sizeof(Buffer)));
  ASSERT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMessage.find("type mismatch"), std::string::npos)
      << R.TrapMessage;
}

TEST(CacheViewVM, BoxedSlotPastTheLayoutTraps) {
  // The boxed compatibility path pre-sizes to CacheSlotCount and traps
  // past it instead of silently growing.
  Chunk C;
  C.Name = "boxedoob";
  C.Constants.push_back(Value::makeFloat(2.0f));
  C.Code.push_back({OpCode::OC_Const, 0, 0, 0});
  C.Code.push_back({OpCode::OC_CacheStore, 3, 0,
                    static_cast<int32_t>(TypeKind::TK_Float)});
  C.Code.push_back({OpCode::OC_Return, 0, 0, 0});
  C.ReturnType = Type(TypeKind::TK_Float);
  C.CacheSlotCount = 2;
  C.CacheBytes = 8;
  VM Machine;
  Cache Boxed;
  auto R = Machine.run(C, {}, &Boxed);
  ASSERT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMessage.find("past the layout"), std::string::npos)
      << R.TrapMessage;
  EXPECT_EQ(Boxed.size(), 2u);
}

} // namespace
