//===- tests/TestSpeculation.cpp - Section 7.1 speculation tests --------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the AllowSpeculation option (the Section 7.1 "speculation in
/// the loader" extension): with Rule 3 weakened, independent terms under
/// dependent guards may be cached, provided the loader can hoist their
/// evaluation before the guarded region. Equivalence must hold both when
/// the load-time guard value matches the read-time value and when it does
/// not (the case strict Rule 3 exists to protect).
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

const char *GuardedSource = R"(
float f(float a, float b, float v) {
  float r = 1.0;
  if (v > 0.0) {
    r = pow(a, b) + sqrt(a);
  }
  return r;
})";

TEST(Speculation, StrictModeCachesNothingUnderDependentGuard) {
  auto Unit = parseUnit(GuardedSource);
  auto Spec = specializeAndCompile(*Unit, "f", {"v"});
  ASSERT_TRUE(Spec.has_value());
  EXPECT_EQ(Spec->Spec.Layout.slotCount(), 0u);
}

TEST(Speculation, SpeculativeModeCachesAndHoists) {
  auto Unit = parseUnit(GuardedSource);
  SpecializerOptions Options;
  Options.AllowSpeculation = true;
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());
  EXPECT_GE(Spec->Spec.Layout.slotCount(), 1u);
  // The loader evaluates the store before the dependent guard so the
  // cache is valid regardless of the load-time value of v.
  std::string Loader = Spec->loaderSource();
  size_t StorePos = Loader.find("cache->slot0 = ");
  size_t GuardPos = Loader.find("if (v > 0.0)");
  ASSERT_NE(StorePos, std::string::npos) << Loader;
  ASSERT_NE(GuardPos, std::string::npos) << Loader;
  EXPECT_LT(StorePos, GuardPos) << Loader;
  // The reader reads the slot instead of recomputing pow.
  EXPECT_EQ(Spec->readerSource().find("pow"), std::string::npos)
      << Spec->readerSource();
}

TEST(Speculation, EquivalentEvenWhenGuardFlips) {
  // Load with v <= 0 (the loader's guard skips the branch), then read with
  // v > 0 (the reader needs the branch): only the hoisted store makes this
  // correct.
  auto Unit = parseUnit(GuardedSource);
  SpecializerOptions Options;
  Options.AllowSpeculation = true;
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());

  VM Machine;
  Cache Slots;
  auto Args = [](float V) {
    return std::vector<Value>{Value::makeFloat(2.0f), Value::makeFloat(3.0f),
                              Value::makeFloat(V)};
  };
  auto Load = Machine.run(Spec->LoaderChunk, Args(-1.0f), &Slots);
  ASSERT_TRUE(Load.ok()) << Load.TrapMessage;
  for (float V : {-2.0f, 0.5f, 4.0f}) {
    auto Read = Machine.run(Spec->ReaderChunk, Args(V), &Slots);
    auto Orig = Machine.run(Spec->OriginalChunk, Args(V));
    ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
    EXPECT_TRUE(Read.Result.equals(Orig.Result))
        << "v=" << V << ": " << Read.Result.str() << " vs "
        << Orig.Result.str();
  }
}

TEST(Speculation, UnhoistableTermsStayDynamic) {
  // The candidate references t, defined *inside* the dependent region, so
  // it cannot be hoisted and must remain dynamic even with speculation.
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  float r = 0.0;
  if (v > 0.0) {
    float t = a + v;
    r = pow(t, 2.0) + sqrt(a);
  }
  return r;
})");
  SpecializerOptions Options;
  Options.AllowSpeculation = true;
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());
  // pow(t, ...) depends on v anyway; sqrt(a) is hoistable and cacheable.
  std::string Reader = Spec->readerSource();
  EXPECT_NE(Reader.find("pow"), std::string::npos) << Reader;
  EXPECT_EQ(Reader.find("sqrt"), std::string::npos) << Reader;

  VM Machine;
  Cache Slots;
  std::vector<Value> LoadArgs = {Value::makeFloat(2.0f),
                                 Value::makeFloat(-1.0f)};
  ASSERT_TRUE(Machine.run(Spec->LoaderChunk, LoadArgs, &Slots).ok());
  for (float V : {-1.0f, 1.0f, 3.0f}) {
    std::vector<Value> Args = {Value::makeFloat(2.0f), Value::makeFloat(V)};
    auto Read = Machine.run(Spec->ReaderChunk, Args, &Slots);
    auto Orig = Machine.run(Spec->OriginalChunk, Args);
    ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
    EXPECT_TRUE(Read.Result.equals(Orig.Result)) << "v=" << V;
  }
}

TEST(Speculation, NestedDependentGuardsHoistToOutermost) {
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  float r = 0.0;
  if (v > 0.0) {
    if (v > 1.0) {
      r = sqrt(a) * pow(a, 3.0);
    }
  }
  return r;
})");
  SpecializerOptions Options;
  Options.AllowSpeculation = true;
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());
  std::string Loader = Spec->loaderSource();
  size_t StorePos = Loader.find("cache->slot0");
  size_t OuterGuard = Loader.find("if (v > 0.0)");
  ASSERT_NE(StorePos, std::string::npos) << Loader;
  EXPECT_LT(StorePos, OuterGuard) << Loader;

  VM Machine;
  Cache Slots;
  std::vector<Value> LoadArgs = {Value::makeFloat(4.0f),
                                 Value::makeFloat(0.0f)};
  ASSERT_TRUE(Machine.run(Spec->LoaderChunk, LoadArgs, &Slots).ok());
  std::vector<Value> ReadArgs = {Value::makeFloat(4.0f),
                                 Value::makeFloat(2.0f)};
  auto Read = Machine.run(Spec->ReaderChunk, ReadArgs, &Slots);
  auto Orig = Machine.run(Spec->OriginalChunk, ReadArgs);
  ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
  EXPECT_TRUE(Read.Result.equals(Orig.Result));
}

TEST(Speculation, IndependentGuardsUnaffected) {
  // Speculation only changes behavior under *dependent* guards.
  auto Unit = parseUnit(R"(
float f(float a, float p, float v) {
  float r = 0.0;
  if (p > 0.0) {
    r = pow(a, 2.0);
  }
  return r * v;
})");
  SpecializerOptions Strict;
  SpecializerOptions Loose;
  Loose.AllowSpeculation = true;
  auto UnitB = parseUnit(R"(
float f(float a, float p, float v) {
  float r = 0.0;
  if (p > 0.0) {
    r = pow(a, 2.0);
  }
  return r * v;
})");
  auto SpecStrict = specializeAndCompile(*Unit, "f", {"v"}, Strict);
  auto SpecLoose = specializeAndCompile(*UnitB, "f", {"v"}, Loose);
  ASSERT_TRUE(SpecStrict.has_value());
  ASSERT_TRUE(SpecLoose.has_value());
  EXPECT_EQ(SpecStrict->Spec.Layout.slotCount(),
            SpecLoose->Spec.Layout.slotCount());
}

} // namespace
