//===- tests/TestCachingAnalysis.cpp - Section 3.2 solver tests ---------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// White-box tests of the Figure 3 constraint solver through the public
/// DataSpecializer interface: which terms end up static, cached, dynamic;
/// the structural invariants of the frontier; and the paper's worked
/// examples.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "lang/ASTWalk.h"
#include "support/Casting.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

/// Convenience: specializes and returns the result (asserting success).
CompiledSpecialization mustSpecialize(CompilationUnit &Unit,
                                      const std::string &Name,
                                      const std::vector<std::string> &Vary,
                                      SpecializerOptions Options = {}) {
  auto Spec = specializeAndCompile(Unit, Name, Vary, Options);
  EXPECT_TRUE(Spec.has_value()) << Unit.Diags.str();
  return std::move(*Spec);
}

TEST(CachingAnalysis, UnknownVaryingParamIsAnError) {
  auto Unit = parseUnit("float f(float a) { return a; }");
  auto Spec = specializeAndCompile(*Unit, "f", {"nope"});
  EXPECT_FALSE(Spec.has_value());
  EXPECT_NE(Unit->Diags.str().find("unknown parameter 'nope'"),
            std::string::npos);
}

TEST(CachingAnalysis, EmptyPartitionCachesResultValue) {
  // Nothing varies: the whole computation is independent, so the reader
  // collapses to returning one cached value.
  auto Unit = parseUnit(
      "float f(float a, float b) { return sqrt(a) * pow(b, 2.0); }");
  auto Spec = mustSpecialize(*Unit, "f", {});
  EXPECT_EQ(Spec.Spec.Layout.slotCount(), 1u);
  std::string Reader = Spec.readerSource();
  EXPECT_NE(Reader.find("return cache->slot0;"), std::string::npos)
      << Reader;
}

TEST(CachingAnalysis, EverythingVariesCachesNothing) {
  auto Unit = parseUnit(
      "float f(float a, float b) { return sqrt(a) * pow(b, 2.0); }");
  auto Spec = mustSpecialize(*Unit, "f", {"a", "b"});
  EXPECT_EQ(Spec.Spec.Layout.slotCount(), 0u);
  // Reader is the original program (modulo the name).
  EXPECT_EQ(Spec.Spec.Stats.ReaderTerms, Spec.Spec.Stats.NormalizedTerms);
}

TEST(CachingAnalysis, TrivialTermsNotCached) {
  // `a != 0.0` is trivial (the paper's (scale != 0) case): the reader
  // re-evaluates it rather than paying a memory reference.
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  if (a != 0.0) {
    return sqrt(a) + v;
  }
  return v;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  std::string Reader = Spec.readerSource();
  EXPECT_NE(Reader.find("a != 0.0"), std::string::npos) << Reader;
  // But sqrt(a) is worth one slot.
  EXPECT_EQ(Spec.Spec.Layout.slotCount(), 1u);
}

TEST(CachingAnalysis, ParameterReferencesNeverCached) {
  auto Unit = parseUnit("float f(float a, float v) { return a * v; }");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  // a is directly available to the reader: no cache at all.
  EXPECT_EQ(Spec.Spec.Layout.slotCount(), 0u);
  EXPECT_NE(Spec.readerSource().find("a * v"), std::string::npos);
}

TEST(CachingAnalysis, FrontierHasDynamicConsumers) {
  // Policy requirement: every cached value is consumed by the reader.
  auto Unit = parseUnit(R"(
float f(float a, float b, float v) {
  float unused = sqrt(a) * 10.0;
  float used = pow(a, b);
  return used * v;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  // Only pow(a, b) feeds the reader; sqrt(a) has no dynamic consumer.
  EXPECT_EQ(Spec.Spec.Layout.slotCount(), 1u);
  std::string Reader = Spec.readerSource();
  EXPECT_EQ(Reader.find("unused"), std::string::npos) << Reader;
  std::string Loader = Spec.loaderSource();
  EXPECT_NE(Loader.find("unused"), std::string::npos) << Loader;
}

TEST(CachingAnalysis, CachedTermsHaveOnlyStaticSubterms) {
  // Frontier invariant: no store nests inside another store.
  auto Unit = parseUnit(R"(
float f(float a, float b, float v) {
  return (sqrt(a) + pow(a, b) * 2.0) * v;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  bool SawNestedStore = false;
  walkExprsInStmt(Spec.Spec.Loader->body(), [&](Expr *E) {
    if (auto *Store = dyn_cast<CacheStoreExpr>(E)) {
      walkExpr(Store->operand(), [&](Expr *Sub) {
        if (isa<CacheStoreExpr>(Sub))
          SawNestedStore = true;
      });
    }
  });
  EXPECT_FALSE(SawNestedStore);
}

TEST(CachingAnalysis, Rule4PullsDefinitionsIntoReader) {
  // v's dynamic use forces x's definition into the reader, where its
  // right-hand side is cached at the definition (Figure 6 pattern).
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  float x = sqrt(a) * 3.0;
  return x * v;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  std::string Reader = Spec.readerSource();
  EXPECT_NE(Reader.find("x = cache->slot0"), std::string::npos) << Reader;
  EXPECT_NE(Reader.find("x * v"), std::string::npos) << Reader;
  EXPECT_EQ(Reader.find("sqrt"), std::string::npos) << Reader;
}

TEST(CachingAnalysis, Rule5GuardsBecomeDynamic) {
  // The dynamic return inside the if forces the construct (and its
  // independent condition) into the reader.
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  if (sqrt(a) > 1.0) {
    return v * 2.0;
  }
  return v;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  std::string Reader = Spec.readerSource();
  // The entire independent predicate is the maximal cacheable term, so
  // the reader tests one cached boolean.
  EXPECT_NE(Reader.find("if (cache->slot0)"), std::string::npos) << Reader;
  EXPECT_EQ(Reader.find("sqrt"), std::string::npos) << Reader;
  ASSERT_EQ(Spec.Spec.Layout.slotCount(), 1u);
  EXPECT_EQ(Spec.Spec.Layout.slots()[0].SlotType, Type::boolTy());
}

TEST(CachingAnalysis, Rule3NoSpeculationUnderDependentGuard) {
  // Everything under a dependent predicate is dynamic: caching pow(a,b)
  // would require the loader to speculate.
  auto Unit = parseUnit(R"(
float f(float a, float b, float v) {
  float r = 0.0;
  if (v > 0.0) {
    r = pow(a, b);
  }
  return r;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  EXPECT_EQ(Spec.Spec.Layout.slotCount(), 0u);
  EXPECT_NE(Spec.readerSource().find("pow(a, b)"), std::string::npos);
}

TEST(CachingAnalysis, Rule2GlobalEffectsStayInReader) {
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  dsc_trace(a);
  return sqrt(a) * v;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  std::string Reader = Spec.readerSource();
  EXPECT_NE(Reader.find("dsc_trace(a)"), std::string::npos) << Reader;

  // Behavioral check: the trace fires in loader AND in every reader run.
  VM Machine;
  Cache Slots;
  std::vector<Value> Args = {Value::makeFloat(2.0f), Value::makeFloat(1.0f)};
  Machine.run(Spec.LoaderChunk, Args, &Slots);
  Machine.run(Spec.ReaderChunk, Args, &Slots);
  Machine.run(Spec.ReaderChunk, Args, &Slots);
  EXPECT_EQ(Machine.traceLog().size(), 3u);
}

TEST(CachingAnalysis, VolatileValueNotCached) {
  // dsc_clock reads global state; consumers must re-execute, nothing
  // derived from it may be cached.
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  float t = dsc_clock() * sqrt(a);
  return t + v;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  std::string Reader = Spec.readerSource();
  EXPECT_NE(Reader.find("dsc_clock()"), std::string::npos) << Reader;
  // sqrt(a) is independent and feeds a dynamic multiply: it gets cached.
  EXPECT_EQ(Spec.Spec.Layout.slotCount(), 1u);
}

TEST(CachingAnalysis, LoopResultCachedThroughPhi) {
  // The classic iterative pattern: the whole loop folds into one slot.
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  float sum = 0.0;
  for (int i = 0; i < 8; i = i + 1) {
    sum = sum + noise(vec3(a, a, a) * toFloat(i));
  }
  return sum * v;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  EXPECT_EQ(Spec.Spec.Layout.slotCount(), 1u);
  std::string Reader = Spec.readerSource();
  EXPECT_EQ(Reader.find("while"), std::string::npos) << Reader;
  EXPECT_EQ(Reader.find("noise"), std::string::npos) << Reader;

  // And it is numerically right.
  VM Machine;
  Cache Slots;
  std::vector<Value> Args = {Value::makeFloat(0.7f), Value::makeFloat(3.0f)};
  auto Orig = Machine.run(Spec.OriginalChunk, Args);
  Machine.run(Spec.LoaderChunk, Args, &Slots);
  auto Read = Machine.run(Spec.ReaderChunk, Args, &Slots);
  ASSERT_TRUE(Orig.ok());
  ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
  EXPECT_TRUE(Orig.Result.equals(Read.Result));
}

TEST(CachingAnalysis, DependentLoopRunsInReader) {
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  float sum = 0.0;
  float i = 0.0;
  while (i < v) {
    sum = sum + sqrt(a);
    i = i + 1.0;
  }
  return sum;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  std::string Reader = Spec.readerSource();
  EXPECT_NE(Reader.find("while (i < v)"), std::string::npos) << Reader;
  // sqrt(a) is loop-invariant and independent: cached even inside the
  // dependent... no — the loop body is under a dependent guard (Rule 3),
  // so it must be dynamic.
  EXPECT_NE(Reader.find("sqrt(a)"), std::string::npos) << Reader;
}

TEST(CachingAnalysis, VectorSlotSizes) {
  auto Unit = parseUnit(R"(
vec3 f(vec3 a, float v) {
  vec3 n = normalize(a);
  return n * v;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  ASSERT_EQ(Spec.Spec.Layout.slotCount(), 1u);
  EXPECT_EQ(Spec.Spec.Layout.totalBytes(), 12u);
  EXPECT_EQ(Spec.Spec.Layout.slots()[0].SlotType, Type::vec3Ty());
}

TEST(CachingAnalysis, SlotOffsetsPack) {
  auto Unit = parseUnit(R"(
float f(vec3 a, float b, float v) {
  vec3 n = normalize(a);
  float s = pow(b, 3.0);
  return (n.x + s) * v + dot(n, a) * v;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  const auto &Slots = Spec.Spec.Layout.slots();
  ASSERT_GE(Slots.size(), 2u);
  unsigned Expected = 0;
  for (const CacheSlot &Slot : Slots) {
    EXPECT_EQ(Slot.Offset, Expected);
    Expected += Slot.SlotType.sizeInBytes();
  }
  EXPECT_EQ(Spec.Spec.Layout.totalBytes(), Expected);
}

TEST(CachingAnalysis, StatsAreConsistent) {
  auto Unit = parseUnit(R"(
float f(float a, float b, float v) {
  float x = sqrt(a) + pow(a, b);
  if (x > 1.0) {
    x = x * 2.0;
  }
  return x * v;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  const auto &S = Spec.Spec.Stats;
  EXPECT_GT(S.FragmentTerms, 0u);
  EXPECT_GE(S.NormalizedTerms, S.FragmentTerms);
  EXPECT_GT(S.LoaderTerms, S.NormalizedTerms); // stores added
  EXPECT_LT(S.ReaderTerms, S.NormalizedTerms); // projection
  EXPECT_EQ(S.CachedExprs, Spec.Spec.Layout.slotCount());
  EXPECT_GT(S.StaticExprs, 0u);
  EXPECT_GT(S.DynamicExprs, 0u);
}

TEST(CachingAnalysis, ReaderNeverContainsStaticOrStoreNodes) {
  auto Unit = parseUnit(R"(
float f(float a, float b, float v) {
  float x = sqrt(a) * pow(a, b);
  float y = x + 1.0;
  if (y > 2.0) { y = y - 1.0; }
  return y * v + x;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  walkExprsInStmt(Spec.Spec.Reader->body(), [&](Expr *E) {
    EXPECT_FALSE(isa<CacheStoreExpr>(E));
  });
  walkExprsInStmt(Spec.Spec.Loader->body(), [&](Expr *E) {
    EXPECT_FALSE(isa<CacheReadExpr>(E));
  });
}

TEST(CachingAnalysis, BareDeclEmittedForStorage) {
  // x's declaration is static (its init feeds only the loader), but the
  // reader assigns x, so a bare declaration must appear.
  auto Unit = parseUnit(R"(
float f(float a, float p, float v) {
  float x = sqrt(a);
  if (p > 0.0) {
    x = pow(a, 3.0);
  }
  return x * v;
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  std::string Reader = Spec.readerSource();
  EXPECT_NE(Reader.find("float x;"), std::string::npos) << Reader;

  VM Machine;
  Cache Slots;
  for (float P : {-1.0f, 1.0f}) {
    std::vector<Value> Args = {Value::makeFloat(2.0f), Value::makeFloat(P),
                               Value::makeFloat(0.5f)};
    auto Orig = Machine.run(Spec.OriginalChunk, Args);
    Machine.run(Spec.LoaderChunk, Args, &Slots);
    auto Read = Machine.run(Spec.ReaderChunk, Args, &Slots);
    ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
    EXPECT_TRUE(Orig.Result.equals(Read.Result));
  }
}

TEST(CachingAnalysis, VoidFragmentSupported) {
  auto Unit = parseUnit(R"(
void f(float a, float v) {
  dsc_trace(sqrt(a) * v);
})");
  auto Spec = mustSpecialize(*Unit, "f", {"v"});
  VM Machine;
  Cache Slots;
  std::vector<Value> Args = {Value::makeFloat(4.0f), Value::makeFloat(2.0f)};
  auto Load = Machine.run(Spec.LoaderChunk, Args, &Slots);
  ASSERT_TRUE(Load.ok());
  auto Read = Machine.run(Spec.ReaderChunk, Args, &Slots);
  ASSERT_TRUE(Read.ok());
  ASSERT_EQ(Machine.traceLog().size(), 2u);
  EXPECT_FLOAT_EQ(Machine.traceLog()[0], Machine.traceLog()[1]);
}

} // namespace
