//===- tests/TestUnitCache.cpp - Specialization unit cache tests ------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/UnitCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace dspec;

namespace {

UnitKey keyFor(const std::string &Shader, uint64_t InvariantHash = 1,
               uint64_t Fingerprint = 1) {
  UnitKey Key;
  Key.Shader = Shader;
  Key.InvariantHash = InvariantHash;
  Key.OptionsFingerprint = Fingerprint;
  return Key;
}

UnitPtr dummyUnit(const std::string &Shader) {
  auto Unit = std::make_shared<SpecializationUnit>(2u, 2u);
  Unit->Shader = Shader;
  return Unit;
}

UnitCache::Builder builderFor(const std::string &Shader,
                              std::atomic<unsigned> *Builds = nullptr) {
  return [Shader, Builds](std::string &) {
    if (Builds)
      ++*Builds;
    return dummyUnit(Shader);
  };
}

TEST(UnitCache, HitReturnsSameUnitAndCounts) {
  UnitCache Cache(4, 1);
  std::atomic<unsigned> Builds{0};
  bool WasHit = true;
  UnitPtr First = Cache.getOrBuild(keyFor("a"), builderFor("a", &Builds),
                                   &WasHit);
  ASSERT_TRUE(First);
  EXPECT_FALSE(WasHit);
  UnitPtr Second = Cache.getOrBuild(keyFor("a"), builderFor("a", &Builds),
                                    &WasHit);
  EXPECT_TRUE(WasHit);
  EXPECT_EQ(First.get(), Second.get());
  EXPECT_EQ(Builds, 1u);

  UnitCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 0u);
}

TEST(UnitCache, EvictsLeastRecentlyUsed) {
  // One shard of capacity 3, so eviction order is fully deterministic.
  UnitCache Cache(3, 1);
  Cache.getOrBuild(keyFor("a"), builderFor("a"));
  Cache.getOrBuild(keyFor("b"), builderFor("b"));
  Cache.getOrBuild(keyFor("c"), builderFor("c"));

  // Touch "a" so "b" becomes the LRU victim.
  EXPECT_TRUE(Cache.lookup(keyFor("a")));

  Cache.getOrBuild(keyFor("d"), builderFor("d"));
  EXPECT_EQ(Cache.stats().Evictions, 1u);

  EXPECT_TRUE(Cache.lookup(keyFor("a")));
  EXPECT_FALSE(Cache.lookup(keyFor("b"))); // evicted
  EXPECT_TRUE(Cache.lookup(keyFor("c")));
  EXPECT_TRUE(Cache.lookup(keyFor("d")));
  EXPECT_EQ(Cache.stats().Entries, 3u);
}

TEST(UnitCache, EvictionOrderFollowsUse) {
  UnitCache Cache(2, 1);
  Cache.getOrBuild(keyFor("a"), builderFor("a"));
  Cache.getOrBuild(keyFor("b"), builderFor("b"));
  // "a" is LRU; inserting "c" must evict it.
  Cache.getOrBuild(keyFor("c"), builderFor("c"));
  EXPECT_FALSE(Cache.lookup(keyFor("a")));
  EXPECT_TRUE(Cache.lookup(keyFor("b")));
  // Now "c" is LRU... but looking "b" up just made "b" MRU, so "c" is the
  // victim of the next insert.
  Cache.getOrBuild(keyFor("d"), builderFor("d"));
  EXPECT_FALSE(Cache.lookup(keyFor("c")));
  EXPECT_TRUE(Cache.lookup(keyFor("b")));
  EXPECT_TRUE(Cache.lookup(keyFor("d")));
}

TEST(UnitCache, EvictionNeverFreesHeldUnits) {
  UnitCache Cache(1, 1);
  UnitPtr Held = Cache.getOrBuild(keyFor("a"), builderFor("a"));
  ASSERT_TRUE(Held);
  // Evict "a" while we still hold a reference to it.
  Cache.getOrBuild(keyFor("b"), builderFor("b"));
  EXPECT_FALSE(Cache.lookup(keyFor("a")));
  // The held unit is still alive and readable (ASan would flag this).
  EXPECT_EQ(Held->Shader, "a");
  EXPECT_EQ(Held->Grid.width(), 2u);
}

TEST(UnitCache, OptionsFingerprintSeparatesEntries) {
  SpecializerOptions Defaults;
  SpecializerOptions Reassoc;
  Reassoc.EnableReassociate = true;
  SpecializerOptions Limited;
  Limited.CacheByteLimit = 16;
  uint64_t FpDefaults = optionsFingerprint(Defaults);
  uint64_t FpReassoc = optionsFingerprint(Reassoc);
  uint64_t FpLimited = optionsFingerprint(Limited);
  EXPECT_NE(FpDefaults, FpReassoc);
  EXPECT_NE(FpDefaults, FpLimited);
  EXPECT_NE(FpReassoc, FpLimited);
  // Same options => same fingerprint (it must be a pure function).
  EXPECT_EQ(FpDefaults, optionsFingerprint(SpecializerOptions{}));

  // Identical shader and invariant hash but different fingerprints must
  // occupy distinct cache entries.
  UnitCache Cache(8, 1);
  std::atomic<unsigned> Builds{0};
  bool WasHit = true;
  Cache.getOrBuild(keyFor("a", 7, FpDefaults), builderFor("a", &Builds),
                   &WasHit);
  EXPECT_FALSE(WasHit);
  Cache.getOrBuild(keyFor("a", 7, FpReassoc), builderFor("a", &Builds),
                   &WasHit);
  EXPECT_FALSE(WasHit);
  EXPECT_EQ(Builds, 2u);
  EXPECT_EQ(Cache.stats().Entries, 2u);
}

TEST(UnitCache, FingerprintDriftsOnEveryOptionField) {
  // Every SpecializerOptions field must reach the fingerprint: a knob
  // that two units disagree on while sharing a cache entry would serve
  // one unit's code under the other's key. Perturb each field in turn
  // and demand a distinct fingerprint from the default and from every
  // other perturbation.
  const uint64_t Base = optionsFingerprint(SpecializerOptions{});
  std::vector<std::pair<const char *, SpecializerOptions>> Perturbed;
  auto Add = [&](const char *Name, auto Mutate) {
    SpecializerOptions O;
    Mutate(O);
    Perturbed.emplace_back(Name, O);
  };
  Add("EnableJoinNormalize",
      [](SpecializerOptions &O) { O.EnableJoinNormalize = false; });
  Add("EnableReassociate",
      [](SpecializerOptions &O) { O.EnableReassociate = true; });
  Add("Reassoc.AllowFloatReassociation", [](SpecializerOptions &O) {
    O.Reassoc.AllowFloatReassociation = false;
  });
  Add("AllowSpeculation",
      [](SpecializerOptions &O) { O.AllowSpeculation = true; });
  Add("WeightVictimBySize",
      [](SpecializerOptions &O) { O.WeightVictimBySize = true; });
  Add("CacheByteLimit=16",
      [](SpecializerOptions &O) { O.CacheByteLimit = 16; });
  // A present-but-zero limit is a real configuration (cache nothing) and
  // must not collide with "no limit".
  Add("CacheByteLimit=0",
      [](SpecializerOptions &O) { O.CacheByteLimit = 0; });
  Add("Cost.LoopMultiplier",
      [](SpecializerOptions &O) { O.Cost.LoopMultiplier += 1; });
  Add("Cost.CondDivisor",
      [](SpecializerOptions &O) { O.Cost.CondDivisor += 1; });
  Add("Cost.CacheRefCost",
      [](SpecializerOptions &O) { O.Cost.CacheRefCost += 1; });
  Add("CollectExplanation",
      [](SpecializerOptions &O) { O.CollectExplanation = true; });

  std::vector<uint64_t> Seen = {Base};
  for (const auto &[Name, Options] : Perturbed) {
    uint64_t Fp = optionsFingerprint(Options);
    for (uint64_t Other : Seen)
      EXPECT_NE(Fp, Other) << Name << " does not drift the fingerprint";
    Seen.push_back(Fp);
  }
}

TEST(UnitCache, VariantKeySeparatesEntries) {
  // Keys identical except for the property variant must not share a
  // cache entry: the units hold different readers.
  UnitKey Generic = keyFor("a", 7, 9);
  UnitKey Pinned = keyFor("a", 7, 9);
  Pinned.Variant.Pins = {{4, ParamProp::PP_Zero}};
  Pinned.Variant.canonicalize();
  ASSERT_FALSE(Generic == Pinned);
  EXPECT_NE(UnitKeyHasher()(Generic), UnitKeyHasher()(Pinned));

  UnitCache Cache(8, 1);
  std::atomic<unsigned> Builds{0};
  bool WasHit = true;
  Cache.getOrBuild(Generic, builderFor("a", &Builds), &WasHit);
  EXPECT_FALSE(WasHit);
  Cache.getOrBuild(Pinned, builderFor("a", &Builds), &WasHit);
  EXPECT_FALSE(WasHit);
  EXPECT_EQ(Builds, 2u);
  EXPECT_EQ(Cache.stats().Entries, 2u);
}

TEST(UnitCache, ConcurrentDistinctKeysOnOneShardStayCoherent) {
  // Many threads hammering getOrBuild with *distinct* keys that all land
  // on one shard (single-shard cache) drive insertion and LRU eviction
  // concurrently. The invariants: every caller gets the unit its key
  // names, the entry count never exceeds capacity, accounting adds up,
  // and eviction happened.
  constexpr unsigned Capacity = 4;
  constexpr unsigned NumThreads = 8;
  constexpr unsigned KeysPerThread = 64;
  UnitCache Cache(Capacity, 1);
  std::atomic<unsigned> Builds{0};

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Cache, &Builds, T] {
      for (unsigned I = 0; I < KeysPerThread; ++I) {
        // 16 distinct keys shared across threads, visited in per-thread
        // orders so hits, misses, coalesced waits, and evictions all
        // interleave on the single shard.
        std::string Shader = "s" + std::to_string((T * 5 + I * 3) % 16);
        UnitPtr Unit = Cache.getOrBuild(
            keyFor(Shader), builderFor(Shader, &Builds));
        ASSERT_TRUE(Unit);
        EXPECT_EQ(Unit->Shader, Shader);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  UnitCache::Stats S = Cache.stats();
  EXPECT_LE(S.Entries, Capacity);
  EXPECT_EQ(S.Hits + S.Misses + S.CoalescedWaits,
            NumThreads * KeysPerThread);
  // 16 live keys through a 4-entry shard must evict...
  EXPECT_GT(S.Evictions, 0u);
  // ...and every eviction was preceded by a build of that key.
  EXPECT_EQ(Builds.load(), S.Misses);
  EXPECT_GE(S.Misses, 16u);
}

TEST(UnitCache, SingleFlightBuildsOnceAcrossThreads) {
  UnitCache Cache(4, 1);
  constexpr unsigned NumThreads = 8;
  std::atomic<unsigned> Builds{0};
  std::atomic<unsigned> Ready{0};

  UnitCache::Builder SlowBuild = [&](std::string &) -> UnitPtr {
    ++Builds;
    // Hold the build open long enough that every other thread arrives
    // while it is in flight.
    while (Ready.load() < NumThreads)
      std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return dummyUnit("slow");
  };

  std::vector<UnitPtr> Results(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      ++Ready;
      Results[T] = Cache.getOrBuild(keyFor("slow"), SlowBuild);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Builds, 1u);
  for (const UnitPtr &R : Results) {
    ASSERT_TRUE(R);
    EXPECT_EQ(R.get(), Results[0].get()); // all callers share one unit
  }
  UnitCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.CoalescedWaits, NumThreads - 1);
}

TEST(UnitCache, BuildFailureReportsAndIsNotCached) {
  UnitCache Cache(4, 1);
  std::atomic<unsigned> Builds{0};
  UnitCache::Builder Failing = [&](std::string &Error) -> UnitPtr {
    ++Builds;
    Error = "synthetic failure";
    return nullptr;
  };
  std::string Error;
  EXPECT_FALSE(Cache.getOrBuild(keyFor("bad"), Failing, nullptr, &Error));
  EXPECT_EQ(Error, "synthetic failure");
  EXPECT_EQ(Cache.stats().BuildFailures, 1u);
  EXPECT_EQ(Cache.stats().Entries, 0u);

  // A failure is not negative-cached: the next call retries the build.
  bool WasHit = true;
  EXPECT_TRUE(Cache.getOrBuild(keyFor("bad"), builderFor("bad", &Builds),
                               &WasHit));
  EXPECT_FALSE(WasHit);
  EXPECT_EQ(Builds, 2u);
}

TEST(UnitCache, ShardedStressKeepsCapacityBound) {
  UnitCache Cache(8, 4);
  constexpr unsigned NumThreads = 4;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Cache, T] {
      for (unsigned I = 0; I < 200; ++I) {
        std::string Shader = "s" + std::to_string((T * 7 + I) % 32);
        UnitPtr Unit = Cache.getOrBuild(keyFor(Shader), builderFor(Shader));
        ASSERT_TRUE(Unit);
        EXPECT_EQ(Unit->Shader, Shader);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  UnitCache::Stats S = Cache.stats();
  // Per-shard capacity is ceil(8/4)=2, so at most 8 entries survive.
  EXPECT_LE(S.Entries, 8u);
  EXPECT_EQ(S.Hits + S.Misses + S.CoalescedWaits, NumThreads * 200u);
  EXPECT_GT(S.Evictions, 0u);
}

} // namespace
