//===- tests/TestShaderGallery.cpp - Gallery-wide validation ---------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gallery-wide property tests: every one of the ten shaders compiles,
/// and for every one of the 131 input partitions the specialization is
/// behaviorally equivalent to the original — the loader reproduces the
/// original's result while filling the cache, and the reader reproduces
/// it for any value of the varying parameter.
///
//===----------------------------------------------------------------------===//

#include "shading/ShaderLab.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

TEST(ShaderGallery, HasTenShadersAnd131Partitions) {
  EXPECT_EQ(shaderGallery().size(), 10u);
  EXPECT_EQ(totalPartitionCount(), 131u);
}

TEST(ShaderGallery, AllShadersCompile) {
  ShaderLab Lab(4, 4);
  for (const ShaderInfo &Info : shaderGallery())
    EXPECT_TRUE(Lab.prepare(Info)) << Lab.lastError();
}

TEST(ShaderGallery, IndicesAreSequential) {
  unsigned Expected = 1;
  for (const ShaderInfo &Info : shaderGallery())
    EXPECT_EQ(Info.Index, Expected++);
}

TEST(ShaderGallery, ControlsHaveSaneSweeps) {
  for (const ShaderInfo &Info : shaderGallery()) {
    for (const ControlParam &Param : Info.Controls) {
      EXPECT_LT(Param.SweepMin, Param.SweepMax)
          << Info.Name << "/" << Param.Name;
      EXPECT_FALSE(Param.Name.empty());
    }
  }
}

/// Identifies one partition for the parameterized equivalence test.
struct PartitionId {
  unsigned ShaderIndex; // 0-based into the gallery
  unsigned ControlIndex;
};

std::vector<PartitionId> allPartitions() {
  std::vector<PartitionId> Out;
  const auto &Gallery = shaderGallery();
  for (unsigned S = 0; S < Gallery.size(); ++S)
    for (unsigned C = 0; C < Gallery[S].Controls.size(); ++C)
      Out.push_back({S, C});
  return Out;
}

class PartitionEquivalence : public ::testing::TestWithParam<PartitionId> {};

TEST_P(PartitionEquivalence, LoaderAndReaderMatchOriginal) {
  const ShaderInfo &Info = shaderGallery()[GetParam().ShaderIndex];
  unsigned ControlIndex = GetParam().ControlIndex;

  // A tiny grid keeps the full 131-partition sweep fast while still
  // covering distinct normals/positions.
  ShaderLab Lab(6, 4);
  auto Spec = Lab.specializePartition(Info, ControlIndex);
  ASSERT_TRUE(Spec.has_value()) << Lab.lastError();

  RenderEngine &Engine = Lab.engine();
  std::vector<float> Controls = ShaderLab::defaultControls(Info);

  // The loader must agree with the original on the load-time inputs.
  Framebuffer FromLoader(Lab.grid().width(), Lab.grid().height());
  Framebuffer FromOriginal(Lab.grid().width(), Lab.grid().height());
  ASSERT_TRUE(Spec->load(Engine, Lab.grid(), Controls));
  ASSERT_TRUE(
      Spec->originalFrame(Engine, Lab.grid(), Controls, &FromOriginal));

  // Sweep the varying parameter: the reader must match the original
  // everywhere, using the caches loaded above.
  const ControlParam &Varying = Info.Controls[ControlIndex];
  for (float V : Lab.sweepValues(Varying, 4)) {
    Controls[ControlIndex] = V;
    Framebuffer FromReader(Lab.grid().width(), Lab.grid().height());
    Framebuffer Reference(Lab.grid().width(), Lab.grid().height());
    ASSERT_TRUE(Spec->readFrame(Engine, Lab.grid(), Controls, &FromReader));
    ASSERT_TRUE(
        Spec->originalFrame(Engine, Lab.grid(), Controls, &Reference));
    for (unsigned Y = 0; Y < Lab.grid().height(); ++Y) {
      for (unsigned X = 0; X < Lab.grid().width(); ++X) {
        ASSERT_TRUE(FromReader.at(X, Y).equals(Reference.at(X, Y)))
            << Info.Name << "/" << Varying.Name << "=" << V << " pixel ("
            << X << "," << Y << "): reader=" << FromReader.at(X, Y).str()
            << " original=" << Reference.at(X, Y).str();
      }
    }
  }
}

std::string partitionName(const ::testing::TestParamInfo<PartitionId> &Info) {
  const ShaderInfo &Shader = shaderGallery()[Info.param.ShaderIndex];
  return Shader.Name + "_" + Shader.Controls[Info.param.ControlIndex].Name;
}

INSTANTIATE_TEST_SUITE_P(AllPartitions, PartitionEquivalence,
                         ::testing::ValuesIn(allPartitions()),
                         partitionName);

} // namespace
