//===- tests/TestJit.cpp - Native tier (copy-and-patch JIT) tests ------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native tier's contract (docs/ENGINE.md, "Native tier"): stitched
/// code is pure speed. Results, instruction accounting, and trap messages
/// are bit-identical to the interpreter tiers; compiled code is cached
/// per specialization unit and shared across chunk copies (UnitCache,
/// snapshot warm starts); and every deopt condition — forced allocation
/// failure included — falls back to the threaded tier without changing a
/// single output byte. Tests that require actual stitching skip
/// themselves on hosts (or DSPEC_FORCE_NO_JIT builds) where
/// jit::available() is false; the fallback behavior itself is covered by
/// the tier matrix in TestExecTiers.cpp, which always runs.
///
//===----------------------------------------------------------------------===//

#include "engine/RenderEngine.h"
#include "jit/Jit.h"
#include "shading/ShaderLab.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace dspec;

namespace {

bool bitIdentical(const Value &A, const Value &B) {
  return A.Kind == B.Kind && A.I == B.I &&
         std::memcmp(A.F, B.F, sizeof(A.F)) == 0;
}

Chunk compileOne(const std::string &Source, const std::string &Name) {
  auto Unit = parseUnit(Source);
  EXPECT_TRUE(Unit->ok()) << Unit->Diags.str();
  auto Code = compileFunction(*Unit, Name);
  EXPECT_TRUE(Code.has_value());
  return *Code;
}

/// Restores the allocation-failure hook even when an assertion bails.
struct ForceAllocFailureGuard {
  explicit ForceAllocFailureGuard(bool Fail) {
    jit::testForceAllocFailure(Fail);
  }
  ~ForceAllocFailureGuard() { jit::testForceAllocFailure(false); }
};

//===----------------------------------------------------------------------===//
// Stitching and bit-exact execution
//===----------------------------------------------------------------------===//

TEST(Jit, StitchesStraightLineAndBranchyChunksBitExact) {
  if (!jit::available())
    GTEST_SKIP() << "native tier unavailable in this build";

  // Straight-line (fused const+mul/const+add) and a loop with an inner
  // diamond: jumps, conditional superinstructions, and modulo all at once.
  const Chunk Straight =
      compileOne("float f(float a) { return a * 2.0 + 1.0; }", "f");
  const Chunk Branchy = compileOne("int f(int n) {\n"
                                   "  int total = 0;\n"
                                   "  int i = 0;\n"
                                   "  while (i < n) {\n"
                                   "    if (i % 2 == 0) { total = total + i; }\n"
                                   "    i = i + 1;\n"
                                   "  }\n"
                                   "  return total;\n"
                                   "}",
                                   "f");

  auto SP = jit::compileChunk(Straight);
  ASSERT_NE(SP, nullptr);
  EXPECT_GT(SP->codeBytes(), 0u);
  EXPECT_NE(SP->entry(), nullptr);

  VM Machine;
  for (float X : {0.0f, -3.5f, 1e20f}) {
    auto Ref = Machine.run(Straight, {Value::makeFloat(X)});
    auto Native = Machine.runJit(*SP, {Value::makeFloat(X)});
    ASSERT_TRUE(Ref.ok());
    ASSERT_TRUE(Native.ok()) << Native.TrapMessage;
    EXPECT_TRUE(bitIdentical(Ref.Result, Native.Result)) << X;
  }

  auto BP = jit::compileChunk(Branchy);
  ASSERT_NE(BP, nullptr);
  for (int N : {0, 1, 2, 7, 100}) {
    auto Ref = Machine.run(Branchy, {Value::makeInt(N)});
    auto Fast = Machine.runThreaded(BP->chunk(), {Value::makeInt(N)});
    auto Native = Machine.runJit(*BP, {Value::makeInt(N)});
    ASSERT_TRUE(Ref.ok());
    ASSERT_TRUE(Native.ok()) << Native.TrapMessage;
    EXPECT_TRUE(bitIdentical(Ref.Result, Native.Result)) << "n=" << N;
    // Instruction accounting is part of the contract: the fragments bill
    // exactly like the threaded dispatch loop.
    EXPECT_EQ(Native.InstructionsExecuted, Fast.InstructionsExecuted)
        << "n=" << N;
  }
}

TEST(Jit, TrapMessagesAndBudgetMatchInterpreter) {
  if (!jit::available())
    GTEST_SKIP() << "native tier unavailable in this build";

  VM Machine;

  const Chunk Div = compileOne("int f(int a) {\n  return 10 / a;\n}", "f");
  auto DP = jit::compileChunk(Div);
  ASSERT_NE(DP, nullptr);
  auto Ref = Machine.run(Div, {Value::makeInt(0)});
  auto Native = Machine.runJit(*DP, {Value::makeInt(0)});
  ASSERT_TRUE(Ref.Trapped);
  ASSERT_TRUE(Native.Trapped);
  EXPECT_EQ(Native.TrapMessage, Ref.TrapMessage);
  EXPECT_EQ(Native.InstructionsExecuted, Ref.InstructionsExecuted);

  const Chunk Mod = compileOne("int f(int a) {\n  return 7 % a;\n}", "f");
  auto MP = jit::compileChunk(Mod);
  ASSERT_NE(MP, nullptr);
  Ref = Machine.run(Mod, {Value::makeInt(0)});
  Native = Machine.runJit(*MP, {Value::makeInt(0)});
  ASSERT_TRUE(Ref.Trapped && Native.Trapped);
  EXPECT_EQ(Native.TrapMessage, Ref.TrapMessage);

  // Budget exhaustion: the fragment-level counter must stop at exactly
  // the same instruction as the threaded tier and report the same trap.
  const Chunk Spin = compileOne("int f(int n) {\n"
                                "  int i = 0;\n"
                                "  while (i < n) { i = i + 1; }\n"
                                "  return i;\n"
                                "}",
                                "f");
  auto SP = jit::compileChunk(Spin);
  ASSERT_NE(SP, nullptr);
  Machine.InstructionBudget = 100;
  auto Threaded = Machine.runThreaded(SP->chunk(), {Value::makeInt(1 << 20)});
  Native = Machine.runJit(*SP, {Value::makeInt(1 << 20)});
  ASSERT_TRUE(Threaded.Trapped);
  ASSERT_TRUE(Native.Trapped);
  EXPECT_EQ(Native.TrapMessage, Threaded.TrapMessage);
  EXPECT_NE(Native.TrapMessage.find("instruction budget exceeded"),
            std::string::npos)
      << Native.TrapMessage;
  EXPECT_EQ(Native.InstructionsExecuted, Threaded.InstructionsExecuted);
}

TEST(Jit, ArgumentValidationMatchesInterpreter) {
  if (!jit::available())
    GTEST_SKIP() << "native tier unavailable in this build";

  const Chunk Code = compileOne("float f(float a) { return a + 1.0; }", "f");
  auto P = jit::compileChunk(Code);
  ASSERT_NE(P, nullptr);
  VM Machine;

  // Wrong arity and wrong argument type trap in the preamble with the
  // interpreter's exact messages (and int promotes to float the same way).
  auto Ref = Machine.run(Code, {});
  auto Native = Machine.runJit(*P, {});
  ASSERT_TRUE(Ref.Trapped && Native.Trapped);
  EXPECT_EQ(Native.TrapMessage, Ref.TrapMessage);

  Ref = Machine.run(Code, {Value::makeBool(true)});
  Native = Machine.runJit(*P, {Value::makeBool(true)});
  ASSERT_TRUE(Ref.Trapped && Native.Trapped);
  EXPECT_EQ(Native.TrapMessage, Ref.TrapMessage);

  Ref = Machine.run(Code, {Value::makeInt(3)});
  Native = Machine.runJit(*P, {Value::makeInt(3)});
  ASSERT_TRUE(Ref.ok() && Native.ok());
  EXPECT_TRUE(bitIdentical(Ref.Result, Native.Result));
}

//===----------------------------------------------------------------------===//
// Fingerprinting and the per-chunk code cache
//===----------------------------------------------------------------------===//

TEST(Jit, FingerprintTracksChunkContent) {
  const Chunk A = compileOne("float f(float a) { return a * 2.0; }", "f");
  Chunk B = A; // copies hash identically
  EXPECT_EQ(jit::chunkFingerprint(A), jit::chunkFingerprint(B));

  B.Constants[0] = Value::makeFloat(3.0f);
  EXPECT_NE(jit::chunkFingerprint(A), jit::chunkFingerprint(B))
      << "constant edit must change the fingerprint";

  Chunk C = A;
  C.Code.push_back({OpCode::OC_ReturnVoid, 0, 0, 0});
  EXPECT_NE(jit::chunkFingerprint(A), jit::chunkFingerprint(C))
      << "code edit must change the fingerprint";
}

TEST(Jit, EnsureCompiledCachesAcrossCallsAndCopies) {
  if (!jit::available())
    GTEST_SKIP() << "native tier unavailable in this build";

  const Chunk Code = compileOne("float f(float a) { return a + 4.0; }", "f");
  bool Stitched = false;
  auto First = jit::ensureCompiled(Code, &Stitched);
  ASSERT_NE(First, nullptr);
  EXPECT_TRUE(Stitched);

  auto Second = jit::ensureCompiled(Code, &Stitched);
  EXPECT_EQ(Second.get(), First.get()) << "slot hit must reuse the program";
  EXPECT_FALSE(Stitched);

  // Chunk copies share the JitSlot (UnitCache hits and snapshot warm
  // starts copy chunks by value), so they reuse the stitched code too.
  Chunk Copy = Code;
  auto Third = jit::ensureCompiled(Copy, &Stitched);
  EXPECT_EQ(Third.get(), First.get());
  EXPECT_FALSE(Stitched);

  // Mutating the copy invalidates the fingerprint: fresh code, and the
  // original chunk's key no longer matches the slot.
  Copy.Constants[0] = Value::makeFloat(9.0f);
  auto Fourth = jit::ensureCompiled(Copy, &Stitched);
  ASSERT_NE(Fourth, nullptr);
  EXPECT_TRUE(Stitched);
  EXPECT_NE(Fourth.get(), First.get());
}

//===----------------------------------------------------------------------===//
// Engine integration: gallery differential, warm starts, forced fallback
//===----------------------------------------------------------------------===//

/// Native vs switch over the whole gallery at 1 and 4 threads:
/// loader/reader framebuffers and arena bytes are byte-identical, and the
/// pass stats show the stitched program actually ran (when available).
TEST(Jit, GalleryNativeMatchesSwitchByteForByte) {
  const unsigned W = 9, H = 7;
  ShaderLab Lab(W, H);

  for (const ShaderInfo &Info : shaderGallery()) {
    auto Spec = Lab.specializePartition(Info, 0);
    ASSERT_TRUE(Spec.has_value()) << Lab.lastError();

    RenderEngine Ref(1);
    Ref.setExecTier(ExecTier::Switch);
    auto Controls = ShaderLab::defaultControls(Info);
    Framebuffer LoadRef(W, H), ReadRef(W, H);
    ASSERT_TRUE(Spec->load(Ref, Lab.grid(), Controls, &LoadRef))
        << Info.Name << ": " << Ref.lastTrap();
    const unsigned char *Raw = Spec->arena().raw();
    std::vector<unsigned char> ArenaRef(Raw, Raw + Spec->arena().totalBytes());
    Controls[0] = Info.Controls[0].SweepMax;
    ASSERT_TRUE(Spec->readFrame(Ref, Lab.grid(), Controls, &ReadRef));

    for (unsigned Threads : {1u, 4u}) {
      RenderEngine Engine(Threads);
      Engine.setExecTier(ExecTier::Native);
      const std::string Tag =
          Info.Name + " [native @" + std::to_string(Threads) + "t]";
      Controls = ShaderLab::defaultControls(Info);
      Framebuffer Load(W, H), Read(W, H);
      ASSERT_TRUE(Spec->load(Engine, Lab.grid(), Controls, &Load))
          << Tag << ": " << Engine.lastTrap();
      const unsigned char *NowRaw = Spec->arena().raw();
      std::vector<unsigned char> ArenaNow(
          NowRaw, NowRaw + Spec->arena().totalBytes());
      EXPECT_EQ(ArenaNow, ArenaRef) << Tag << ": arena bytes differ";
      Controls[0] = Info.Controls[0].SweepMax;
      ASSERT_TRUE(Spec->readFrame(Engine, Lab.grid(), Controls, &Read))
          << Tag << ": " << Engine.lastTrap();
      if (jit::available()) {
        EXPECT_EQ(Engine.lastPassStats().NativePixels,
                  static_cast<uint64_t>(W) * H)
            << Tag << ": reader pass did not run stitched code";
        EXPECT_GT(Engine.lastPassStats().NativeCodeBytes, 0u) << Tag;
      } else {
        EXPECT_EQ(Engine.lastPassStats().NativePixels, 0u)
            << Tag << ": fallback build must not claim native pixels";
      }
      for (unsigned Y = 0; Y < H; ++Y)
        for (unsigned X = 0; X < W; ++X) {
          ASSERT_TRUE(bitIdentical(LoadRef.at(X, Y), Load.at(X, Y)))
              << "loader " << Tag << ": pixel " << X << "," << Y;
          ASSERT_TRUE(bitIdentical(ReadRef.at(X, Y), Read.at(X, Y)))
              << "reader " << Tag << ": pixel " << X << "," << Y;
        }
    }
  }
}

/// A snapshot warm start stitches once and then serves every subsequent
/// reader pass from the chunk's code cache — observable as exactly one
/// pass with NativeCompiles == 1.
TEST(Jit, SnapshotWarmStartReusesStitchedCode) {
  if (!jit::available())
    GTEST_SKIP() << "native tier unavailable in this build";

  const ShaderInfo *Info = findShader("marble");
  ASSERT_NE(Info, nullptr);
  RenderGrid Grid(10, 8);

  auto Unit = parseUnit(Info->Source);
  ASSERT_TRUE(Unit->ok()) << Unit->Diags.str();
  auto Spec =
      specializeAndCompile(*Unit, Info->Name, {Info->Controls[0].Name});
  ASSERT_TRUE(Spec.has_value());
  auto Controls = ShaderLab::defaultControls(*Info);

  RenderEngine Engine(1);
  CacheArena Arena;
  ASSERT_TRUE(Engine.loaderPass(Spec->LoaderChunk, Spec->Spec.Layout, Grid,
                                Controls, Arena))
      << Engine.lastTrap();

  SnapshotMeta Meta;
  Meta.FragmentName = Info->Name;
  Meta.VaryingParams = {Info->Controls[0].Name};
  Meta.GridWidth = Grid.width();
  Meta.GridHeight = Grid.height();
  Meta.Controls = Controls;
  const std::string Path = testing::TempDir() + "dspec_jit_warm.dsnap";
  std::string Error;
  ASSERT_TRUE(RenderEngine::saveSnapshot(Path, Meta, Spec->LoaderChunk,
                                         Spec->ReaderChunk, Spec->Spec.Layout,
                                         Arena, &Error))
      << Error;
  auto Warm = RenderEngine::fromSnapshot(Path, &Error);
  ASSERT_TRUE(Warm.has_value()) << Error;

  RenderEngine Reader(2);
  Reader.setExecTier(ExecTier::Native);
  Framebuffer First(Grid.width(), Grid.height());
  ASSERT_TRUE(Reader.readerPass(Warm->Reader, Warm->Grid, Controls,
                                Warm->Arena, &First))
      << Reader.lastTrap();
  EXPECT_EQ(Reader.lastPassStats().NativeCompiles, 1u)
      << "first pass over the restored reader must stitch";
  EXPECT_GT(Reader.lastPassStats().NativeCompileSeconds, 0.0);
  const uint64_t Bytes = Reader.lastPassStats().NativeCodeBytes;
  EXPECT_GT(Bytes, 0u);

  // Ten frames of parameter edits: all served by the cached program, and
  // a fresh engine (new VM workers, same warm-start chunk) hits it too.
  for (int Frame = 0; Frame < 10; ++Frame) {
    Controls[0] += 0.1f;
    Framebuffer Out(Grid.width(), Grid.height());
    ASSERT_TRUE(Reader.readerPass(Warm->Reader, Warm->Grid, Controls,
                                  Warm->Arena, &Out))
        << Reader.lastTrap();
    EXPECT_EQ(Reader.lastPassStats().NativeCompiles, 0u) << "frame " << Frame;
    EXPECT_EQ(Reader.lastPassStats().NativeCodeBytes, Bytes);
  }
  RenderEngine Other(1);
  Other.setExecTier(ExecTier::Native);
  Framebuffer Out(Grid.width(), Grid.height());
  ASSERT_TRUE(Other.readerPass(Warm->Reader, Warm->Grid, Controls,
                               Warm->Arena, &Out))
      << Other.lastTrap();
  EXPECT_EQ(Other.lastPassStats().NativeCompiles, 0u)
      << "stitched code is cached on the chunk, not the engine";
  std::remove(Path.c_str());
}

/// When executable memory cannot be allocated (mmap/mprotect failure,
/// simulated by the test hook) the native tier falls back to the threaded
/// tier and still renders bit-identically.
TEST(Jit, ForcedAllocFailureFallsBackBitIdentical) {
  const ShaderInfo *Info = findShader("plastic");
  ASSERT_NE(Info, nullptr);
  const unsigned W = 8, H = 6;
  ShaderLab Lab(W, H);
  auto Spec = Lab.specializePartition(*Info, 0);
  ASSERT_TRUE(Spec.has_value()) << Lab.lastError();
  auto Controls = ShaderLab::defaultControls(*Info);

  RenderEngine Ref(1);
  Ref.setExecTier(ExecTier::Switch);
  Framebuffer LoadRef(W, H), ReadRef(W, H);
  ASSERT_TRUE(Spec->load(Ref, Lab.grid(), Controls, &LoadRef))
      << Ref.lastTrap();
  ASSERT_TRUE(Spec->readFrame(Ref, Lab.grid(), Controls, &ReadRef));

  {
    ForceAllocFailureGuard Guard(true);
    RenderEngine Engine(2);
    Engine.setExecTier(ExecTier::Native);
    Framebuffer Load(W, H), Read(W, H);
    ASSERT_TRUE(Spec->load(Engine, Lab.grid(), Controls, &Load))
        << Engine.lastTrap();
    ASSERT_TRUE(Spec->readFrame(Engine, Lab.grid(), Controls, &Read))
        << Engine.lastTrap();
    EXPECT_EQ(Engine.lastPassStats().NativePixels, 0u)
        << "allocation failure must deopt, not execute stitched code";
    EXPECT_EQ(Engine.lastPassStats().NativeCodeBytes, 0u);
    for (unsigned Y = 0; Y < H; ++Y)
      for (unsigned X = 0; X < W; ++X) {
        ASSERT_TRUE(bitIdentical(LoadRef.at(X, Y), Load.at(X, Y)))
            << "loader pixel " << X << "," << Y;
        ASSERT_TRUE(bitIdentical(ReadRef.at(X, Y), Read.at(X, Y)))
            << "reader pixel " << X << "," << Y;
      }
  }

  if (jit::available()) {
    // Failures are memoized per fingerprint, so the failed probes above
    // stay deopted — but fresh chunks stitch fine once the hook is gone.
    const Chunk Code = compileOne("int g(int a) { return a + 2; }", "g");
    auto P = jit::compileChunk(Code);
    ASSERT_NE(P, nullptr);
    VM Machine;
    auto R = Machine.runJit(*P, {Value::makeInt(5)});
    ASSERT_TRUE(R.ok()) << R.TrapMessage;
    EXPECT_EQ(R.Result.I, 7);
  }
}

} // namespace
