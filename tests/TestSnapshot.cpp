//===- tests/TestSnapshot.cpp - Snapshot subsystem tests ---------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The snapshot subsystem's contract, from both sides:
///
///  - round-trip property: for every gallery shader, a warm start from a
///    snapshot file renders reader frames bit-identical to the
///    in-process loader+reader run, at one thread and at several;
///  - hostile-input property: truncations at arbitrary lengths, single
///    bit flips, future format versions, and garbage files all fail
///    with a diagnostic — never UB or a crash (CI runs this under
///    ASan+UBSan).
///
//===----------------------------------------------------------------------===//

#include "engine/RenderEngine.h"
#include "shading/ShaderLab.h"
#include "snapshot/Snapshot.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstring>
#include <fstream>

using namespace dspec;

namespace {

bool bitIdentical(const Value &A, const Value &B) {
  return A.Kind == B.Kind && A.I == B.I &&
         std::memcmp(A.F, B.F, sizeof(A.F)) == 0;
}

void expectSameImage(const Framebuffer &A, const Framebuffer &B,
                     const std::string &What) {
  ASSERT_EQ(A.width(), B.width());
  ASSERT_EQ(A.height(), B.height());
  for (unsigned Y = 0; Y < A.height(); ++Y)
    for (unsigned X = 0; X < A.width(); ++X)
      ASSERT_TRUE(bitIdentical(A.at(X, Y), B.at(X, Y)))
          << What << ": pixel " << X << "," << Y << " differs";
}

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "dspec_" + Name;
}

std::vector<unsigned char> slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(In),
                                    std::istreambuf_iterator<char>());
}

void spit(const std::string &Path, const std::vector<unsigned char> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

/// Specializes \p Info on its first control, runs the loader over
/// \p Grid, writes a snapshot to \p Path, and renders the in-process
/// reader frame into \p ColdOut. Returns the control vector used.
std::vector<float> buildAndSave(const ShaderInfo &Info, const RenderGrid &Grid,
                                const std::string &Path, Framebuffer *ColdOut,
                                const SpecializerOptions &Options = {}) {
  auto Unit = parseUnit(Info.Source);
  EXPECT_TRUE(Unit->ok()) << Info.Name;
  auto Spec =
      specializeAndCompile(*Unit, Info.Name, {Info.Controls[0].Name}, Options);
  EXPECT_TRUE(Spec.has_value()) << Info.Name;
  auto Controls = ShaderLab::defaultControls(Info);

  RenderEngine Engine(1);
  CacheArena Arena;
  EXPECT_TRUE(Engine.loaderPass(Spec->LoaderChunk, Spec->Spec.Layout, Grid,
                                Controls, Arena))
      << Engine.lastTrap();
  if (ColdOut) {
    EXPECT_TRUE(Engine.readerPass(Spec->ReaderChunk, Grid, Controls, Arena,
                                  ColdOut))
        << Engine.lastTrap();
  }

  SnapshotMeta Meta = SnapshotMeta::fromOptions(Options);
  Meta.FragmentName = Info.Name;
  Meta.VaryingParams = {Info.Controls[0].Name};
  Meta.GridWidth = Grid.width();
  Meta.GridHeight = Grid.height();
  Meta.Controls = Controls;
  std::string Error;
  EXPECT_TRUE(RenderEngine::saveSnapshot(Path, Meta, Spec->LoaderChunk,
                                         Spec->ReaderChunk, Spec->Spec.Layout,
                                         Arena, &Error))
      << Error;
  return Controls;
}

//===----------------------------------------------------------------------===//
// Round-trip property
//===----------------------------------------------------------------------===//

TEST(Snapshot, GalleryWarmStartIsBitIdentical) {
  RenderGrid Grid(16, 12);
  const std::string Path = tempPath("gallery.dsnap");
  for (const ShaderInfo &Info : shaderGallery()) {
    Framebuffer Cold(Grid.width(), Grid.height());
    auto Controls = buildAndSave(Info, Grid, Path, &Cold);

    std::string Error;
    auto Warm = RenderEngine::fromSnapshot(Path, &Error);
    ASSERT_TRUE(Warm.has_value()) << Info.Name << ": " << Error;
    EXPECT_EQ(Warm->Meta.FragmentName, Info.Name);
    ASSERT_EQ(Warm->Meta.VaryingParams.size(), 1u);
    EXPECT_EQ(Warm->Meta.VaryingParams[0], Info.Controls[0].Name);
    EXPECT_EQ(Warm->Grid.pixelCount(), Grid.pixelCount());
    EXPECT_EQ(Warm->Arena.strideBytes(), Warm->Layout.totalBytes());

    for (unsigned Threads : {1u, 4u}) {
      RenderEngine Engine(Threads);
      Framebuffer WarmFb(Grid.width(), Grid.height());
      ASSERT_TRUE(Engine.readerPass(Warm->Reader, Warm->Grid, Controls,
                                    Warm->Arena, &WarmFb))
          << Info.Name << ": " << Engine.lastTrap();
      expectSameImage(Cold, WarmFb,
                      Info.Name + " @" + std::to_string(Threads) + "t");
    }
  }
  std::remove(Path.c_str());
}

TEST(Snapshot, WarmReaderTracksTheVaryingControl) {
  // A warm start is not a frozen image: sweeping the varying control
  // must produce the same frames a cold process would.
  const ShaderInfo *Info = findShader("marble");
  RenderGrid Grid(16, 12);
  const std::string Path = tempPath("sweep.dsnap");
  auto Controls = buildAndSave(*Info, Grid, Path, nullptr);

  auto Unit = parseUnit(Info->Source);
  auto Spec = specializeAndCompile(*Unit, Info->Name, {Info->Controls[0].Name});
  ASSERT_TRUE(Spec.has_value());
  RenderEngine Engine(1);
  CacheArena Arena;
  ASSERT_TRUE(Engine.loaderPass(Spec->LoaderChunk, Spec->Spec.Layout, Grid,
                                Controls, Arena));

  auto Warm = RenderEngine::fromSnapshot(Path);
  ASSERT_TRUE(Warm.has_value());
  for (float V : {0.1f, 0.55f, 0.9f}) {
    Controls[0] = V;
    Framebuffer Cold(Grid.width(), Grid.height());
    Framebuffer WarmFb(Grid.width(), Grid.height());
    ASSERT_TRUE(
        Engine.readerPass(Spec->ReaderChunk, Grid, Controls, Arena, &Cold));
    ASSERT_TRUE(Engine.readerPass(Warm->Reader, Warm->Grid, Controls,
                                  Warm->Arena, &WarmFb));
    expectSameImage(Cold, WarmFb, "ka=" + std::to_string(V));
  }
  std::remove(Path.c_str());
}

TEST(Snapshot, MetaProvenanceRoundTrips) {
  const ShaderInfo *Info = findShader("rings");
  RenderGrid Grid(8, 6);
  const std::string Path = tempPath("meta.dsnap");
  SpecializerOptions Options;
  Options.EnableReassociate = true;
  Options.CacheByteLimit = 16;
  auto Controls = buildAndSave(*Info, Grid, Path, nullptr, Options);

  SpecializationSnapshot Snap;
  std::string Error;
  ASSERT_TRUE(readSnapshotFile(Path, Snap, &Error)) << Error;
  EXPECT_EQ(Snap.Meta.FragmentName, "rings");
  EXPECT_TRUE(Snap.Meta.Reassociate);
  EXPECT_TRUE(Snap.Meta.JoinNormalize);
  EXPECT_FALSE(Snap.Meta.Speculation);
  ASSERT_TRUE(Snap.Meta.CacheByteLimit.has_value());
  EXPECT_EQ(*Snap.Meta.CacheByteLimit, 16u);
  EXPECT_EQ(Snap.Meta.GridWidth, 8u);
  EXPECT_EQ(Snap.Meta.GridHeight, 6u);
  EXPECT_EQ(Snap.Meta.Controls, Controls);
  EXPECT_LE(Snap.Layout.totalBytes(), 16u);
  EXPECT_EQ(Snap.ArenaStride, Snap.Layout.totalBytes());
  std::remove(Path.c_str());
}

TEST(Snapshot, ArenaPayloadIsAligned) {
  const ShaderInfo *Info = findShader("marble");
  RenderGrid Grid(8, 6);
  const std::string Path = tempPath("aligned.dsnap");
  buildAndSave(*Info, Grid, Path, nullptr);

  SnapshotFileInfo FileInfo;
  std::string Error;
  ASSERT_TRUE(inspectSnapshotFile(Path, FileInfo, &Error)) << Error;
  EXPECT_EQ(FileInfo.FormatVersion, kSnapshotFormatVersion);
  ASSERT_EQ(FileInfo.Sections.size(), 5u);
  bool SawArena = false;
  for (const SnapshotSectionInfo &S : FileInfo.Sections) {
    EXPECT_TRUE(S.CrcOk) << snapshotSectionName(S.Id);
    if (S.Id == static_cast<uint32_t>(SnapshotSection::Arena)) {
      SawArena = true;
      EXPECT_EQ(S.Offset % 64, 0u) << "ARENA payload must be 64-byte aligned";
    }
  }
  EXPECT_TRUE(SawArena);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Hostile input: diagnostics, never crashes
//===----------------------------------------------------------------------===//

/// Fixture holding one pristine snapshot image for corruption tests.
class SnapshotCorruption : public ::testing::Test {
protected:
  void SetUp() override {
    // One file per test: ctest runs tests in parallel processes.
    Path = tempPath(std::string("corrupt_") +
                    testing::UnitTest::GetInstance()->current_test_info()
                        ->name() +
                    ".dsnap");
    buildAndSave(*findShader("marble"), RenderGrid(8, 6), Path, nullptr);
    Pristine = slurp(Path);
    ASSERT_GT(Pristine.size(), 200u);
  }
  void TearDown() override { std::remove(Path.c_str()); }

  /// Expects both entry points to reject the current file contents.
  void expectRejected(const std::string &What) {
    SpecializationSnapshot Snap;
    std::string Error;
    EXPECT_FALSE(readSnapshotFile(Path, Snap, &Error)) << What;
    EXPECT_FALSE(Error.empty()) << What;
    std::string WarmError;
    EXPECT_FALSE(RenderEngine::fromSnapshot(Path, &WarmError).has_value())
        << What;
    EXPECT_FALSE(WarmError.empty()) << What;
  }

  std::string Path;
  std::vector<unsigned char> Pristine;
};

TEST_F(SnapshotCorruption, TruncationAtAnyLengthFailsCleanly) {
  std::vector<size_t> Lengths;
  // Every length through the header and section table, then a coarse
  // sweep of the payload region, then one byte short of valid.
  for (size_t L = 0; L < 200; ++L)
    Lengths.push_back(L);
  for (size_t L = 200; L < Pristine.size(); L += 509)
    Lengths.push_back(L);
  Lengths.push_back(Pristine.size() - 1);

  for (size_t Len : Lengths) {
    spit(Path, std::vector<unsigned char>(Pristine.begin(),
                                          Pristine.begin() + Len));
    expectRejected("truncated to " + std::to_string(Len) + " bytes");
  }
}

TEST_F(SnapshotCorruption, SingleBitFlipsAreDetectedOrHarmless) {
  // Bytes covered by a validity check: the 16-byte header, the section
  // table minus each entry's reserved field, and every section payload.
  // Flips there must be rejected; flips elsewhere (alignment padding)
  // must merely not crash.
  SnapshotFileInfo FileInfo;
  ASSERT_TRUE(inspectSnapshotFile(Path, FileInfo, nullptr));
  auto isChecked = [&](size_t Offset) {
    if (Offset < 16)
      return true;
    const size_t TableEnd = 16 + FileInfo.Sections.size() * 28;
    if (Offset < TableEnd) {
      size_t InEntry = (Offset - 16) % 28;
      return InEntry < 4 || InEntry >= 8; // skip the reserved u32
    }
    for (const SnapshotSectionInfo &S : FileInfo.Sections)
      if (Offset >= S.Offset && Offset < S.Offset + S.Bytes)
        return true;
    return false;
  };

  std::vector<size_t> Offsets;
  for (size_t O = 0; O < 200; ++O)
    Offsets.push_back(O);
  for (size_t O = 200; O < Pristine.size(); O += 131)
    Offsets.push_back(O);

  for (size_t Offset : Offsets) {
    auto Image = Pristine;
    Image[Offset] ^= 0x04;
    spit(Path, Image);
    if (isChecked(Offset)) {
      expectRejected("bit flip at offset " + std::to_string(Offset));
    } else {
      // Padding byte: load may succeed, but must still be well-formed.
      SpecializationSnapshot Snap;
      std::string Error;
      if (readSnapshotFile(Path, Snap, &Error)) {
        EXPECT_EQ(Snap.ArenaBytes.size(),
                  static_cast<size_t>(Snap.ArenaPixels) * Snap.ArenaStride);
      }
    }
  }
}

TEST_F(SnapshotCorruption, FutureFormatVersionIsRejected) {
  auto Image = Pristine;
  uint32_t Bumped = kSnapshotFormatVersion + 1;
  std::memcpy(Image.data() + 8, &Bumped, sizeof(Bumped));
  spit(Path, Image);
  SpecializationSnapshot Snap;
  std::string Error;
  EXPECT_FALSE(readSnapshotFile(Path, Snap, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST_F(SnapshotCorruption, WrongMagicIsRejected) {
  auto Image = Pristine;
  Image[0] = 'X';
  spit(Path, Image);
  SpecializationSnapshot Snap;
  std::string Error;
  EXPECT_FALSE(readSnapshotFile(Path, Snap, &Error));
  EXPECT_NE(Error.find("magic"), std::string::npos) << Error;
}

TEST_F(SnapshotCorruption, GarbageFilesAreRejected) {
  // Deterministic pseudo-random garbage, with and without a real magic.
  std::vector<unsigned char> Garbage(4096);
  uint32_t State = 0x2545F491u;
  for (unsigned char &B : Garbage) {
    State = State * 1664525u + 1013904223u;
    B = static_cast<unsigned char>(State >> 24);
  }
  spit(Path, Garbage);
  expectRejected("random garbage");

  std::memcpy(Garbage.data(), kSnapshotMagic, sizeof(kSnapshotMagic));
  uint32_t Version = kSnapshotFormatVersion;
  std::memcpy(Garbage.data() + 8, &Version, sizeof(Version));
  spit(Path, Garbage);
  expectRejected("garbage with a valid header prefix");
}

TEST(Snapshot, MissingFileIsADiagnostic) {
  SpecializationSnapshot Snap;
  std::string Error;
  EXPECT_FALSE(readSnapshotFile(tempPath("does_not_exist.dsnap"), Snap,
                                &Error));
  EXPECT_FALSE(Error.empty());
  std::string WarmError;
  EXPECT_FALSE(RenderEngine::fromSnapshot(tempPath("does_not_exist.dsnap"),
                                          &WarmError)
                   .has_value());
  EXPECT_FALSE(WarmError.empty());
}

TEST(Snapshot, WriterRefusesInconsistentState) {
  // A minimal well-formed snapshot, broken one field at a time.
  auto makeValid = [] {
    SpecializationSnapshot Snap;
    Snap.Meta.FragmentName = "tiny";
    Snap.Meta.GridWidth = 2;
    Snap.Meta.GridHeight = 2;
    Snap.Layout.addSlot(Type(TypeKind::TK_Float));
    Chunk C;
    C.Name = "tiny";
    C.Constants.push_back(Value::makeFloat(1.0f));
    C.Code.push_back({OpCode::OC_Const, 0, 0, 0});
    C.Code.push_back({OpCode::OC_Return, 0, 0, 0});
    C.ReturnType = Type(TypeKind::TK_Float);
    Snap.Loader = C;
    Snap.Reader = C;
    Snap.ArenaPixels = 4;
    Snap.ArenaStride = Snap.Layout.totalBytes();
    Snap.ArenaBytes.assign(size_t(4) * Snap.ArenaStride, 0);
    return Snap;
  };
  const std::string Path = tempPath("writer.dsnap");
  std::string Error;

  ASSERT_TRUE(writeSnapshotFile(Path, makeValid(), &Error)) << Error;

  auto BadStride = makeValid();
  BadStride.ArenaStride += 4;
  BadStride.ArenaBytes.assign(size_t(4) * BadStride.ArenaStride, 0);
  EXPECT_FALSE(writeSnapshotFile(Path, BadStride, &Error));

  auto BadBytes = makeValid();
  BadBytes.ArenaBytes.pop_back();
  EXPECT_FALSE(writeSnapshotFile(Path, BadBytes, &Error));

  auto BadGrid = makeValid();
  BadGrid.Meta.GridWidth = 3;
  EXPECT_FALSE(writeSnapshotFile(Path, BadGrid, &Error));

  auto BadChunk = makeValid();
  BadChunk.Reader.Code.clear();
  BadChunk.Reader.Code.push_back({OpCode::OC_Const, 99, 0, 0});
  BadChunk.Reader.Code.push_back({OpCode::OC_Return, 0, 0, 0});
  EXPECT_FALSE(writeSnapshotFile(Path, BadChunk, &Error));
  EXPECT_NE(Error.find("broken chunk"), std::string::npos) << Error;

  std::remove(Path.c_str());
}

TEST(Snapshot, ArenaRestoreRejectsWrongSize) {
  CacheLayout Layout;
  Layout.addSlot(Type(TypeKind::TK_Vec3));
  std::vector<unsigned char> Bytes(Layout.totalBytes() * 3, 0xAB);
  CacheArena Arena;
  EXPECT_FALSE(Arena.restore(4, Layout, Bytes.data(), Bytes.size()));
  EXPECT_EQ(Arena.pixelCount(), 0u);
  EXPECT_TRUE(Arena.restore(3, Layout, Bytes.data(), Bytes.size()));
  EXPECT_EQ(Arena.pixelCount(), 3u);
  EXPECT_EQ(Arena.strideBytes(), Layout.totalBytes());
  EXPECT_EQ(std::memcmp(Arena.raw(), Bytes.data(), Bytes.size()), 0);
}

} // namespace
