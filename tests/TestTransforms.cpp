//===- tests/TestTransforms.cpp - Section 4.1 / 4.2 transform tests -----------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceAnalysis.h"
#include "driver/Pipeline.h"
#include "lang/ASTPrinter.h"
#include "lang/ASTWalk.h"
#include "support/Casting.h"
#include "transform/JoinNormalize.h"
#include "transform/Reassociate.h"
#include "vm/BytecodeCompiler.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

unsigned countPhiCopies(Function *F) {
  unsigned Count = 0;
  walkStmts(F->body(), [&](Stmt *S) {
    if (auto *Assign = dyn_cast<AssignStmt>(S))
      if (Assign->isPhiCopy())
        ++Count;
  });
  return Count;
}

TEST(JoinNormalize, InsertsAfterIf) {
  auto Unit = parseUnit(R"(
float f(float a, float p) {
  float x = a;
  if (p > 0.0) {
    x = 2.0;
  }
  return x;
})");
  ASSERT_TRUE(Unit->ok());
  Function *F = Unit->Prog->findFunction("f");
  unsigned Inserted = joinNormalize(F, Unit->Ctx);
  EXPECT_EQ(Inserted, 1u);
  EXPECT_EQ(countPhiCopies(F), 1u);
  PrintOptions Options;
  Options.AnnotatePhiCopies = true;
  std::string Printed = printFunction(F, Options);
  EXPECT_NE(Printed.find("x = x; /* phi */"), std::string::npos) << Printed;
}

TEST(JoinNormalize, InsertsAfterWhile) {
  auto Unit = parseUnit(R"(
float f(float n) {
  float x = 0.0;
  while (x < n) {
    x = x + 1.0;
  }
  return x;
})");
  Function *F = Unit->Prog->findFunction("f");
  EXPECT_EQ(joinNormalize(F, Unit->Ctx), 1u);
}

TEST(JoinNormalize, SkipsVarsDeclaredInside) {
  auto Unit = parseUnit(R"(
float f(float p) {
  if (p > 0.0) {
    float t = 1.0;
    t = t + 1.0;
  }
  return p;
})");
  Function *F = Unit->Prog->findFunction("f");
  // t is scoped to the branch: no merge survives the join.
  EXPECT_EQ(joinNormalize(F, Unit->Ctx), 0u);
}

TEST(JoinNormalize, OneCopyPerVariablePerJoin) {
  auto Unit = parseUnit(R"(
float f(float p) {
  float x = 0.0;
  float y = 0.0;
  if (p > 0.0) {
    x = 1.0;
    x = 2.0;
    y = 3.0;
  } else {
    x = 4.0;
  }
  return x + y;
})");
  Function *F = Unit->Prog->findFunction("f");
  EXPECT_EQ(joinNormalize(F, Unit->Ctx), 2u); // one for x, one for y
}

TEST(JoinNormalize, NestedConstructs) {
  auto Unit = parseUnit(R"(
float f(float p, float q) {
  float x = 0.0;
  if (p > 0.0) {
    if (q > 0.0) {
      x = 1.0;
    }
  }
  return x;
})");
  Function *F = Unit->Prog->findFunction("f");
  // Inner if sits directly in the outer branch block: one phi there plus
  // one after the outer if.
  EXPECT_EQ(joinNormalize(F, Unit->Ctx), 2u);
}

TEST(JoinNormalize, InsertedCopiesAreResolved) {
  auto Unit = parseUnit(R"(
float f(float p) {
  float x = 0.0;
  if (p > 0.0) { x = 1.0; }
  return x;
})");
  Function *F = Unit->Prog->findFunction("f");
  joinNormalize(F, Unit->Ctx);
  walkStmts(F->body(), [&](Stmt *S) {
    auto *Assign = dyn_cast<AssignStmt>(S);
    if (!Assign || !Assign->isPhiCopy())
      return;
    EXPECT_NE(Assign->target(), nullptr);
    auto *RHS = cast<VarRefExpr>(Assign->value());
    EXPECT_EQ(RHS->decl(), Assign->target());
    EXPECT_EQ(RHS->type(), Assign->target()->type());
  });
}

TEST(JoinNormalize, PreservesBehavior) {
  const char *Source = R"(
float f(float a, float p) {
  float x = a;
  if (p > 0.0) { x = x * 2.0; } else { x = x - 1.0; }
  float y = abs(x) + 1.0;
  while (y < 10.0) { y = y * 2.0; }
  return y;
})";
  auto Unit = parseUnit(Source);
  Function *F = Unit->Prog->findFunction("f");
  auto Before = compileFunction(*Unit, "f");
  joinNormalize(F, Unit->Ctx);
  Chunk After = BytecodeCompiler().compile(F);
  VM Machine;
  for (float A : {-2.0f, 0.5f, 3.0f}) {
    for (float P : {-1.0f, 1.0f}) {
      std::vector<Value> Args = {Value::makeFloat(A), Value::makeFloat(P)};
      auto R1 = Machine.run(*Before, Args);
      auto R2 = Machine.run(After, Args);
      ASSERT_TRUE(R1.ok());
      ASSERT_TRUE(R2.ok());
      EXPECT_TRUE(R1.Result.equals(R2.Result));
    }
  }
}

// ----------------------------------------------------------- Reassociation

struct ReassocFixture {
  std::unique_ptr<CompilationUnit> Unit;
  Function *F = nullptr;
  DependenceAnalysis Dep;

  ReassocFixture(const std::string &Source,
                 const std::vector<std::string> &Varying) {
    Unit = parseUnit(Source);
    EXPECT_TRUE(Unit->ok()) << Unit->Diags.str();
    F = Unit->Prog->findFunction("f");
    std::vector<VarDecl *> Decls;
    for (const auto &Name : Varying)
      Decls.push_back(F->findParam(Name));
    Dep.run(F, Decls, Unit->Ctx.numNodeIds());
  }
};

TEST(Reassociate, GroupsIndependentsFirst) {
  // The paper's example: x1, x2 dependent.
  ReassocFixture Fix(
      "float f(float x1, float y1, float z1, float x2, float y2, float z2) "
      "{ return x1*x2 + y1*y2 + z1*z2; }",
      {"x1", "x2"});
  unsigned Changed = reassociate(Fix.F, Fix.Unit->Ctx, Fix.Dep);
  EXPECT_EQ(Changed, 1u);
  std::string Printed = printFunction(Fix.F);
  // Independent products now come first.
  size_t YPos = Printed.find("y1 * y2");
  size_t XPos = Printed.find("x1 * x2");
  ASSERT_NE(YPos, std::string::npos) << Printed;
  ASSERT_NE(XPos, std::string::npos);
  EXPECT_LT(YPos, XPos) << Printed;
}

TEST(Reassociate, AlreadyGroupedUntouched) {
  ReassocFixture Fix(
      "float f(float x1, float y1, float z1, float x2, float y2, float z2) "
      "{ return x1*x2 + y1*y2 + z1*z2; }",
      {"z1", "z2"}); // left-associated chain already isolates z
  EXPECT_EQ(reassociate(Fix.F, Fix.Unit->Ctx, Fix.Dep), 0u);
}

TEST(Reassociate, FloatGateRespected) {
  ReassocFixture Fix("float f(float a, float b) { return a + b + a; }",
                     {"a"});
  ReassociateOptions NoFloat;
  NoFloat.AllowFloatReassociation = false;
  EXPECT_EQ(reassociate(Fix.F, Fix.Unit->Ctx, Fix.Dep, NoFloat), 0u);
}

TEST(Reassociate, IntChains) {
  ReassocFixture Fix("int f(int a, int b, int c) { return a + b + c; }",
                     {"a"});
  EXPECT_EQ(reassociate(Fix.F, Fix.Unit->Ctx, Fix.Dep), 1u);
  std::string Printed = printFunction(Fix.F);
  EXPECT_NE(Printed.find("b + c + a"), std::string::npos) << Printed;
}

TEST(Reassociate, MulChains) {
  ReassocFixture Fix("float f(float a, float b, float c) "
                     "{ return a * b * c; }",
                     {"b"});
  EXPECT_EQ(reassociate(Fix.F, Fix.Unit->Ctx, Fix.Dep), 1u);
  std::string Printed = printFunction(Fix.F);
  EXPECT_NE(Printed.find("a * c * b"), std::string::npos) << Printed;
}

TEST(Reassociate, SubtractionNotTouched) {
  ReassocFixture Fix("float f(float a, float b, float c) "
                     "{ return a - b - c; }",
                     {"a"});
  EXPECT_EQ(reassociate(Fix.F, Fix.Unit->Ctx, Fix.Dep), 0u);
}

TEST(Reassociate, MixedTypeChainsNotFlattened) {
  // (i + j) is an int subchain inside a float chain; moving leaves across
  // the promotion would change semantics, so the int subtree stays a leaf.
  ReassocFixture Fix("float f(int i, int j, float a, float b) "
                     "{ return a + (i + j) + b; }",
                     {"a"});
  reassociate(Fix.F, Fix.Unit->Ctx, Fix.Dep);
  std::string Printed = printFunction(Fix.F);
  EXPECT_NE(Printed.find("i + j"), std::string::npos) << Printed;
}

TEST(Reassociate, PreservesIntSemanticsExactly) {
  const char *Source =
      "int f(int a, int b, int c, int d) { return a + b + c + d; }";
  ReassocFixture Fix(Source, {"b"});
  auto Before = compileFunction(*Fix.Unit, "f");
  reassociate(Fix.F, Fix.Unit->Ctx, Fix.Dep);
  Chunk After = BytecodeCompiler().compile(Fix.F);
  VM Machine;
  std::vector<Value> Args = {Value::makeInt(11), Value::makeInt(-7),
                             Value::makeInt(5), Value::makeInt(100)};
  EXPECT_EQ(Machine.run(*Before, Args).Result.asInt(),
            Machine.run(After, Args).Result.asInt());
}

} // namespace
