//===- tests/TestSema.cpp - Semantic analysis tests ---------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "lang/ASTWalk.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

/// Expects the wrapped body to fail Sema with a message containing
/// \p Fragment.
void expectError(const std::string &Source, const std::string &Fragment) {
  auto Unit = parseUnit(Source);
  EXPECT_FALSE(Unit->ok()) << "expected error containing '" << Fragment
                           << "' for:\n"
                           << Source;
  EXPECT_NE(Unit->Diags.str().find(Fragment), std::string::npos)
      << Unit->Diags.str();
}

void expectOK(const std::string &Source) {
  auto Unit = parseUnit(Source);
  EXPECT_TRUE(Unit->ok()) << Unit->Diags.str();
}

TEST(Sema, ResolvesVariablesToDecls) {
  auto Unit = parseUnit("int f(int a) { int b = a; return b; }");
  ASSERT_TRUE(Unit->ok());
  Function *F = Unit->Prog->findFunction("f");
  VarDecl *A = F->params()[0];
  unsigned Bound = 0;
  walkExprsInStmt(F->body(), [&](Expr *E) {
    if (auto *Ref = dyn_cast<VarRefExpr>(E)) {
      EXPECT_NE(Ref->decl(), nullptr);
      if (Ref->name() == "a") {
        EXPECT_EQ(Ref->decl(), A);
      }
      ++Bound;
    }
  });
  EXPECT_EQ(Bound, 2u);
}

TEST(Sema, UndeclaredVariable) {
  expectError("int f() { return nope; }", "undeclared variable 'nope'");
}

TEST(Sema, UseBeforeDeclaration) {
  expectError("int f() { int x = x; return x; }", "undeclared");
}

TEST(Sema, RedeclarationSameScope) {
  expectError("int f() { int x = 1; float x = 2.0; return x; }",
              "redeclaration");
}

TEST(Sema, ShadowingInNestedScopeAllowed) {
  expectOK("int f(int x) { if (x > 0) { int x = 2; return x; } return x; }");
}

TEST(Sema, BlockScopeEnds) {
  expectError("int f(int p) { if (p > 0) { int y = 1; } return y; }",
              "undeclared variable 'y'");
}

TEST(Sema, AssignToUndeclared) {
  expectError("void f() { q = 1; }", "undeclared variable 'q'");
}

TEST(Sema, IntToFloatImplicit) {
  expectOK("float f(int a) { float x = a; x = 3; return x + 1; }");
}

TEST(Sema, FloatToIntRejected) {
  expectError("int f(float a) { int x = a; return x; }",
              "cannot convert 'float' to 'int'");
}

TEST(Sema, VectorArithmetic) {
  expectOK(R"(
vec3 f(vec3 a, vec3 b, float s) {
  vec3 c = a + b;
  c = c - a;
  c = c * b;
  c = c * s;
  c = s * c;
  c = c / s;
  c = c / b;
  return -c;
})");
}

TEST(Sema, VectorScalarAddRejected) {
  expectError("vec3 f(vec3 a, float s) { return a + s; }",
              "invalid operands to '+'");
}

TEST(Sema, MixedVectorWidthsRejected) {
  expectError("vec3 f(vec3 a, vec2 b) { return a + b; }",
              "invalid operands");
}

TEST(Sema, ModuloIntOnly) {
  expectOK("int f(int a, int b) { return a % (b + 1); }");
  expectError("float f(float a) { return a % 2.0; }", "invalid operands");
}

TEST(Sema, ComparisonsYieldBool) {
  auto Unit = parseUnit("bool f(int a, float b) { return a < b; }");
  ASSERT_TRUE(Unit->ok()) << Unit->Diags.str();
}

TEST(Sema, VectorComparisonRejected) {
  expectError("bool f(vec3 a, vec3 b) { return a < b; }", "invalid operands");
}

TEST(Sema, LogicalRequireBool) {
  expectError("bool f(int a) { return a && true; }", "invalid operands");
  expectOK("bool f(int a) { return a > 0 && a < 10; }");
}

TEST(Sema, ConditionMustBeBool) {
  expectError("int f(int a) { if (a) { return 1; } return 0; }",
              "must be 'bool'");
  expectError("int f(int a) { while (a + 1) { a = 0; } return a; }",
              "must be 'bool'");
}

TEST(Sema, TernaryTypes) {
  expectOK("float f(bool c, int a, float b) { return c ? a : b; }");
  expectError("float f(bool c, vec3 a, float b) { return c ? a : b; }",
              "mismatched types");
  expectError("float f(int c, float a, float b) { return c ? a : b; }",
              "must be 'bool'");
}

TEST(Sema, MemberAccess) {
  expectOK("float f(vec2 v) { return v.x + v.y; }");
  expectError("float f(vec2 v) { return v.z; }", "has no component 'z'");
  expectError("float f(float v) { return v.x; }",
              "component access on non-vector");
}

TEST(Sema, BuiltinResolution) {
  expectOK("float f(vec3 a, vec3 b) { return dot(a, b); }");
  expectOK("float f(float x) { return sqrt(x) + abs(x); }");
  // int argument promotes to float.
  expectOK("float f(int x) { return sqrt(x); }");
}

TEST(Sema, BuiltinOverloadByWidth) {
  auto Unit = parseUnit(R"(
float f(vec2 a, vec3 b, vec4 c) {
  return length(a) + length(b) + length(c);
})");
  ASSERT_TRUE(Unit->ok()) << Unit->Diags.str();
  std::vector<BuiltinId> Resolved;
  walkExprsInStmt(Unit->Prog->findFunction("f")->body(), [&](Expr *E) {
    if (auto *Call = dyn_cast<CallExpr>(E))
      Resolved.push_back(Call->builtin());
  });
  ASSERT_EQ(Resolved.size(), 3u);
  EXPECT_EQ(Resolved[0], BuiltinId::BI_LengthV2);
  EXPECT_EQ(Resolved[1], BuiltinId::BI_LengthV3);
  EXPECT_EQ(Resolved[2], BuiltinId::BI_LengthV4);
}

TEST(Sema, UnknownFunction) {
  expectError("float f() { return frobnicate(1.0); }", "unknown function");
}

TEST(Sema, NoMatchingOverload) {
  expectError("float f(vec3 a) { return sqrt(a); }", "no overload");
}

TEST(Sema, ReturnChecks) {
  expectError("int f() { return; }", "must return a value");
  expectError("void f() { return 1; }", "may not return a value");
  expectError("int f(float x) { return x; }", "cannot convert");
  expectOK("void f() { return; }");
  expectOK("float f(int x) { return x; }");
}

TEST(Sema, DuplicateFunction) {
  expectError("int f() { return 1; } int f() { return 2; }", "redefinition");
}

TEST(Sema, NegationTypeRules) {
  expectOK("vec3 f(vec3 v) { return -v; }");
  expectError("bool f(bool b) { return -b; }", "cannot negate");
  expectError("float f(float x) { return !x; }", "must be 'bool'");
}

TEST(Sema, TypesAnnotatedOnAllExprs) {
  auto Unit = parseUnit(
      "float f(vec3 a, float s) { return length(a * s) + a.x; }");
  ASSERT_TRUE(Unit->ok());
  walkExprsInStmt(Unit->Prog->findFunction("f")->body(), [&](Expr *E) {
    EXPECT_FALSE(E->type().isVoid()) << "untyped expr survived Sema";
  });
}

} // namespace
