//===- tests/TestAnalysis.cpp - Analysis infrastructure tests -----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for StructureInfo, ReachingDefs, DependenceAnalysis,
/// SingleValued, and the CostModel — the inputs to the caching analysis.
///
//===----------------------------------------------------------------------===//

#include "analysis/CostModel.h"
#include "analysis/DependenceAnalysis.h"
#include "analysis/ReachingDefs.h"
#include "analysis/SingleValued.h"
#include "analysis/StructureInfo.h"
#include "driver/Pipeline.h"
#include "lang/ASTWalk.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

#include <set>

using namespace dspec;

namespace {

/// Test fixture bundling a parsed function with all analyses.
struct Analyzed {
  std::unique_ptr<CompilationUnit> Unit;
  Function *F = nullptr;
  StructureInfo SI;
  ReachingDefs RD;
  DependenceAnalysis Dep;
  CostModel CM;

  static Analyzed make(const std::string &Source,
                       const std::vector<std::string> &Varying = {},
                       const std::string &Name = "f") {
    Analyzed A;
    A.Unit = parseUnit(Source);
    EXPECT_TRUE(A.Unit->ok()) << A.Unit->Diags.str();
    A.F = A.Unit->Prog->findFunction(Name);
    EXPECT_NE(A.F, nullptr);
    uint32_t N = A.Unit->Ctx.numNodeIds();
    A.SI.build(A.F, N);
    A.RD.run(A.F, N);
    std::vector<VarDecl *> VaryingDecls;
    for (const std::string &V : Varying)
      VaryingDecls.push_back(A.F->findParam(V));
    A.Dep.run(A.F, VaryingDecls, N);
    A.CM.build(A.F, A.SI, CostOptions{}, N);
    return A;
  }

  /// Finds the first VarRef with the given spelling, in preorder.
  VarRefExpr *refOf(const std::string &Name, unsigned Skip = 0) {
    VarRefExpr *Found = nullptr;
    walkExprsInStmt(F->body(), [&](Expr *E) {
      if (Found)
        return;
      if (auto *Ref = dyn_cast<VarRefExpr>(E))
        if (Ref->name() == Name) {
          if (Skip == 0)
            Found = Ref;
          else
            --Skip;
        }
    });
    EXPECT_NE(Found, nullptr) << "no ref of " << Name;
    return Found;
  }

  /// Finds the first statement assigning (or declaring) \p Name.
  Stmt *defOf(const std::string &Name, unsigned Skip = 0) {
    Stmt *Found = nullptr;
    walkStmts(F->body(), [&](Stmt *S) {
      if (Found)
        return;
      std::string Target;
      if (auto *Decl = dyn_cast<DeclStmt>(S))
        Target = Decl->var()->name();
      else if (auto *Assign = dyn_cast<AssignStmt>(S))
        Target = Assign->targetName();
      if (Target == Name) {
        if (Skip == 0)
          Found = S;
        else
          --Skip;
      }
    });
    EXPECT_NE(Found, nullptr) << "no def of " << Name;
    return Found;
  }
};

// ---------------------------------------------------------------- Structure

TEST(StructureInfo, GuardsAndLoops) {
  auto A = Analyzed::make(R"(
float f(float a, float b) {
  float x = a;
  if (a > 0.0) {
    while (x < b) {
      x = x + 1.0;
    }
  }
  return x;
})");
  // 'x + 1.0' is guarded by the if and the while, inside one loop.
  VarRefExpr *InnerRef = A.refOf("x", 1); // 0: while cond; 1: x + 1.0
  const auto &Guards = A.SI.guards(InnerRef->nodeId());
  ASSERT_EQ(Guards.size(), 2u);
  EXPECT_FALSE(Guards[0].IsLoop);
  EXPECT_TRUE(Guards[1].IsLoop);
  EXPECT_EQ(A.SI.loops(InnerRef->nodeId()).size(), 1u);
  EXPECT_EQ(A.SI.conditionalDepth(InnerRef->nodeId()), 1u);

  // The while condition counts as inside the loop but guarded only by if.
  VarRefExpr *CondRef = A.refOf("x", 0);
  EXPECT_EQ(A.SI.loops(CondRef->nodeId()).size(), 1u);
  EXPECT_EQ(A.SI.guards(CondRef->nodeId()).size(), 1u);

  // The return is outside everything.
  VarRefExpr *RetRef = A.refOf("x", 2);
  EXPECT_TRUE(A.SI.guards(RetRef->nodeId()).empty());
  EXPECT_TRUE(A.SI.loops(RetRef->nodeId()).empty());
}

TEST(StructureInfo, OwnerStatements) {
  auto A = Analyzed::make("float f(float a) { float x = a; return x; }");
  VarRefExpr *InitRef = A.refOf("a");
  EXPECT_TRUE(isa<DeclStmt>(A.SI.ownerStmt(InitRef)));
  VarRefExpr *RetRef = A.refOf("x");
  EXPECT_TRUE(isa<ReturnStmt>(A.SI.ownerStmt(RetRef)));
}

TEST(StructureInfo, DeclStmtLookup) {
  auto A = Analyzed::make("float f(float a) { float x = a; return x; }");
  VarDecl *X = A.refOf("x")->decl();
  ASSERT_NE(A.SI.declStmtOf(X), nullptr);
  EXPECT_EQ(A.SI.declStmtOf(X)->var(), X);
  // Parameters have no DeclStmt.
  EXPECT_EQ(A.SI.declStmtOf(A.F->params()[0]), nullptr);
}

TEST(StructureInfo, TraversalCoversEveryNodeOnce) {
  auto A = Analyzed::make(
      "float f(float a) { float x = a; if (a > 0.0) { x = 1.0; } return x; }");
  // Node ids are assigned in creation order (bottom-up in the parser), so
  // the preorder traversal is not id-sorted — but it must visit every
  // statement exactly once, deterministically.
  std::set<uint32_t> Seen;
  for (const Stmt *S : A.SI.allStmts())
    EXPECT_TRUE(Seen.insert(S->nodeId()).second);
  unsigned Direct = 0;
  walkStmts(A.F->body(), [&](Stmt *) { ++Direct; });
  EXPECT_EQ(Seen.size(), Direct);
}

// ------------------------------------------------------------ Reaching defs

TEST(ReachingDefs, StraightLineStrongUpdate) {
  auto A = Analyzed::make(R"(
float f(float a) {
  float x = a;
  x = 2.0;
  return x;
})");
  VarRefExpr *Ret = A.refOf("x");
  ASSERT_EQ(A.RD.defs(Ret).size(), 1u);
  EXPECT_EQ(A.RD.defs(Ret)[0], A.defOf("x", 1)); // the assignment
  EXPECT_FALSE(A.RD.reachedByEntry(Ret));
}

TEST(ReachingDefs, BranchesMerge) {
  auto A = Analyzed::make(R"(
float f(float a, float p) {
  float x = a;
  if (p > 0.0) {
    x = 2.0;
  }
  return x;
})");
  VarRefExpr *Ret = A.refOf("x");
  EXPECT_EQ(A.RD.defs(Ret).size(), 2u); // decl and conditional assign
}

TEST(ReachingDefs, BothBranchesKill) {
  auto A = Analyzed::make(R"(
float f(float a, float p) {
  float x = a;
  if (p > 0.0) { x = 1.0; } else { x = 2.0; }
  return x;
})");
  VarRefExpr *Ret = A.refOf("x");
  EXPECT_EQ(A.RD.defs(Ret).size(), 2u); // the two assignments; decl killed
  for (const Stmt *Def : A.RD.defs(Ret))
    EXPECT_TRUE(isa<AssignStmt>(Def));
}

TEST(ReachingDefs, LoopBackEdge) {
  auto A = Analyzed::make(R"(
float f(float n) {
  float x = 0.0;
  while (x < n) {
    x = x + 1.0;
  }
  return x;
})");
  // The ref inside the loop body sees both the decl and the back edge.
  VarRefExpr *Body = A.refOf("x", 1);
  EXPECT_EQ(A.RD.defs(Body).size(), 2u);
  // And so does the post-loop ref.
  VarRefExpr *Ret = A.refOf("x", 2);
  EXPECT_EQ(A.RD.defs(Ret).size(), 2u);
}

TEST(ReachingDefs, ParamsReachAsEntry) {
  auto A = Analyzed::make("float f(float a) { return a; }");
  VarRefExpr *Ref = A.refOf("a");
  EXPECT_TRUE(A.RD.defs(Ref).empty());
  EXPECT_TRUE(A.RD.reachedByEntry(Ref));
}

TEST(ReachingDefs, ParamReassignment) {
  auto A = Analyzed::make("float f(float a) { a = a * 2.0; return a; }");
  VarRefExpr *Ret = A.refOf("a", 1);
  ASSERT_EQ(A.RD.defs(Ret).size(), 1u);
  EXPECT_FALSE(A.RD.reachedByEntry(Ret));
}

TEST(ReachingDefs, AllDefsOfCollects) {
  auto A = Analyzed::make(R"(
float f(float p) {
  float x = 1.0;
  if (p > 0.0) { x = 2.0; }
  x = 3.0;
  return x;
})");
  VarDecl *X = A.refOf("x")->decl();
  EXPECT_EQ(A.RD.allDefsOf(X).size(), 3u);
}

// -------------------------------------------------------------- Dependence

TEST(Dependence, VaryingParamSeeds) {
  auto A = Analyzed::make("float f(float a, float b) { return a + b; }",
                          {"b"});
  EXPECT_FALSE(A.Dep.isDependent(A.refOf("a")));
  EXPECT_TRUE(A.Dep.isDependent(A.refOf("b")));
}

TEST(Dependence, FlowsThroughAssignments) {
  auto A = Analyzed::make(R"(
float f(float a, float b) {
  float x = b * 2.0;
  float y = a * 2.0;
  return x + y;
})",
                          {"b"});
  EXPECT_TRUE(A.Dep.isDependent(A.refOf("x")));
  EXPECT_FALSE(A.Dep.isDependent(A.refOf("y")));
  EXPECT_TRUE(A.Dep.isDependent(A.defOf("x")));
  EXPECT_FALSE(A.Dep.isDependent(A.defOf("y")));
}

TEST(Dependence, StrongUpdateClears) {
  auto A = Analyzed::make(R"(
float f(float b) {
  float x = b;
  x = 1.0;
  return x;
})",
                          {"b"});
  EXPECT_FALSE(A.Dep.isDependent(A.refOf("x")));
}

TEST(Dependence, Case4JoinForcing) {
  // x is assigned an independent value, but under dependent control: the
  // paper's case (4).
  auto A = Analyzed::make(R"(
float f(float a, float b) {
  float x = 1.0;
  if (b > 0.0) {
    x = 2.0;
  }
  return x + a;
})",
                          {"b"});
  EXPECT_TRUE(A.Dep.isDependent(A.refOf("x")));
  // The conditional assignment itself is dependent (its effect is).
  EXPECT_TRUE(A.Dep.isDependent(A.defOf("x", 1)));
}

TEST(Dependence, LoopFixpoint) {
  // Dependence enters the loop through the guard: iteration count depends
  // on b, so every value accumulated inside is dependent.
  auto A = Analyzed::make(R"(
float f(float b) {
  float sum = 0.0;
  float i = 0.0;
  while (i < b) {
    sum = sum + 1.0;
    i = i + 1.0;
  }
  return sum;
})",
                          {"b"});
  EXPECT_TRUE(A.Dep.isDependent(A.refOf("sum", 1))); // post-loop would be 2?
  EXPECT_TRUE(A.Dep.isDependent(A.defOf("sum", 1)));
}

TEST(Dependence, IndependentLoopStaysIndependent) {
  auto A = Analyzed::make(R"(
float f(float a, float b) {
  float sum = 0.0;
  for (int i = 0; i < 8; i = i + 1) {
    sum = sum + a;
  }
  return sum * b;
})",
                          {"b"});
  EXPECT_FALSE(A.Dep.isDependent(A.defOf("sum", 1)));
  EXPECT_FALSE(A.Dep.isDependent(A.refOf("sum", 1)));
}

TEST(Dependence, GlobalEffectCallsAreDependent) {
  auto A = Analyzed::make(
      "float f(float a) { float t = dsc_clock(); return a + t; }", {});
  EXPECT_TRUE(A.Dep.isDependent(A.refOf("t")));
  EXPECT_TRUE(A.Dep.isDependent(A.defOf("t")));
}

TEST(Dependence, CountIsMonotoneInPartitionSize) {
  const char *Source = R"(
float f(float a, float b, float c) {
  float x = a * b;
  float y = x + c;
  return y * a;
})";
  auto None = Analyzed::make(Source, {});
  auto One = Analyzed::make(Source, {"b"});
  auto Two = Analyzed::make(Source, {"b", "c"});
  EXPECT_EQ(None.Dep.dependentCount(), 0u);
  EXPECT_LT(One.Dep.dependentCount(), Two.Dep.dependentCount());
}

// ------------------------------------------------------------ SingleValued

TEST(SingleValued, OutsideLoopsAlways) {
  auto A = Analyzed::make("float f(float a) { float x = a * a; return x; }");
  EXPECT_TRUE(isSingleValued(A.refOf("a"), A.SI, A.RD));
}

TEST(SingleValued, LoopVariantRejected) {
  auto A = Analyzed::make(R"(
float f(float n) {
  float sum = 0.0;
  float i = 0.0;
  while (i < n) {
    sum = sum + i * i;
    i = i + 1.0;
  }
  return sum;
})");
  // 'i * i' inside the loop takes a new value each iteration.
  Expr *Mul = nullptr;
  walkExprsInStmt(A.F->body(), [&](Expr *E) {
    if (auto *B = dyn_cast<BinaryExpr>(E))
      if (B->op() == BinaryOp::BO_Mul && !Mul)
        Mul = B;
  });
  ASSERT_NE(Mul, nullptr);
  EXPECT_FALSE(isSingleValued(Mul, A.SI, A.RD));
}

TEST(SingleValued, LoopInvariantAccepted) {
  auto A = Analyzed::make(R"(
float f(float a, float n) {
  float k = a * 3.0;
  float sum = 0.0;
  float i = 0.0;
  while (i < n) {
    sum = sum + k * 2.0;
    i = i + 1.0;
  }
  return sum;
})");
  // 'k * 2.0' only references k, defined before the loop.
  Expr *KTimes2 = nullptr;
  walkExprsInStmt(A.F->body(), [&](Expr *E) {
    if (auto *B = dyn_cast<BinaryExpr>(E)) {
      if (B->op() != BinaryOp::BO_Mul)
        return;
      if (auto *L = dyn_cast<VarRefExpr>(B->lhs()))
        if (L->name() == "k")
          KTimes2 = B;
    }
  });
  ASSERT_NE(KTimes2, nullptr);
  EXPECT_TRUE(isSingleValued(KTimes2, A.SI, A.RD));
}

// ---------------------------------------------------------------- CostModel

TEST(CostModel, OperatorCosts) {
  auto A = Analyzed::make("float f(float a, float b) { return a / b; }");
  Expr *Div = nullptr;
  walkExprsInStmt(A.F->body(), [&](Expr *E) {
    if (isa<BinaryExpr>(E))
      Div = E;
  });
  ASSERT_NE(Div, nullptr);
  // div(9) + two refs (1 each)
  EXPECT_EQ(A.CM.rawCost(Div), 11u);
}

TEST(CostModel, AddCheaperThanDiv) {
  auto Add = Analyzed::make("float f(float a, float b) { return a + b; }");
  auto Div = Analyzed::make("float f(float a, float b) { return a / b; }");
  Expr *AddE = nullptr, *DivE = nullptr;
  walkExprsInStmt(Add.F->body(), [&](Expr *E) {
    if (isa<BinaryExpr>(E))
      AddE = E;
  });
  walkExprsInStmt(Div.F->body(), [&](Expr *E) {
    if (isa<BinaryExpr>(E))
      DivE = E;
  });
  EXPECT_LT(Add.CM.rawCost(AddE), Div.CM.rawCost(DivE));
}

TEST(CostModel, VectorOpsScaleWithWidth) {
  auto A = Analyzed::make(
      "vec3 f(vec3 a, vec3 b, float x, float y) { return a + b; }");
  auto B = Analyzed::make(
      "float f(vec3 a, vec3 b, float x, float y) { return x + y; }");
  Expr *VecAdd = nullptr, *ScalarAdd = nullptr;
  walkExprsInStmt(A.F->body(), [&](Expr *E) {
    if (isa<BinaryExpr>(E))
      VecAdd = E;
  });
  walkExprsInStmt(B.F->body(), [&](Expr *E) {
    if (isa<BinaryExpr>(E))
      ScalarAdd = E;
  });
  EXPECT_GT(A.CM.rawCost(VecAdd), B.CM.rawCost(ScalarAdd));
}

TEST(CostModel, LoopMultiplierAndGuardDivisor) {
  auto A = Analyzed::make(R"(
float f(float a, float n) {
  float s = 0.0;
  float i = 0.0;
  while (i < n) {
    s = s + a * a;
    i = i + 1.0;
  }
  if (a > 0.0) {
    s = s + a * a;
  }
  return s;
})");
  Expr *InLoop = nullptr, *InIf = nullptr;
  walkExprsInStmt(A.F->body(), [&](Expr *E) {
    auto *B = dyn_cast<BinaryExpr>(E);
    if (!B || B->op() != BinaryOp::BO_Mul)
      return;
    if (!InLoop)
      InLoop = B;
    else if (!InIf)
      InIf = B;
  });
  ASSERT_NE(InLoop, nullptr);
  ASSERT_NE(InIf, nullptr);
  EXPECT_EQ(A.CM.rawCost(InLoop), A.CM.rawCost(InIf));
  // x5 in the loop, /2 under the conditional.
  EXPECT_DOUBLE_EQ(A.CM.weightedCost(InLoop),
                   5.0 * A.CM.rawCost(InLoop));
  EXPECT_DOUBLE_EQ(A.CM.weightedCost(InIf), A.CM.rawCost(InIf) / 2.0);
}

TEST(CostModel, BuiltinCostsUsed) {
  auto A = Analyzed::make("float f(vec3 p) { return noise(p); }");
  Expr *Call = nullptr;
  walkExprsInStmt(A.F->body(), [&](Expr *E) {
    if (isa<CallExpr>(E))
      Call = E;
  });
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(A.CM.rawCost(Call),
            getBuiltinInfo(BuiltinId::BI_Noise3).Cost + 1 /* p ref */);
}

} // namespace
