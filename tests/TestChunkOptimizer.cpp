//===- tests/TestChunkOptimizer.cpp - Peephole optimizer tests ----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "shading/ShaderLab.h"
#include "vm/ChunkOptimizer.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

Chunk compile(const std::string &Source, const std::string &Name = "f") {
  auto Unit = parseUnit(Source);
  EXPECT_TRUE(Unit->ok()) << Unit->Diags.str();
  return *compileFunction(*Unit, Name);
}

TEST(ChunkOptimizer, FoldsLiteralArithmetic) {
  Chunk C = compile("float f(float x) { return x * (2.0 * 3.0); }");
  auto Stats = optimizeChunk(C);
  EXPECT_GE(Stats.ConstantsFolded, 1u);
  EXPECT_LT(Stats.InstructionsAfter, Stats.InstructionsBefore);
  VM Machine;
  auto R = Machine.run(C, {Value::makeFloat(1.5f)});
  ASSERT_TRUE(R.ok());
  EXPECT_FLOAT_EQ(R.Result.asFloat(), 9.0f);
}

TEST(ChunkOptimizer, FoldsConversionOfConstant) {
  // 'float x = 3;' emits const(int 3); convert(float).
  Chunk C = compile("float f() { float x = 3; return x; }");
  auto Stats = optimizeChunk(C);
  EXPECT_GE(Stats.ConversionsFolded, 1u);
  VM Machine;
  auto R = Machine.run(C, {});
  ASSERT_TRUE(R.ok());
  EXPECT_FLOAT_EQ(R.Result.asFloat(), 3.0f);
}

TEST(ChunkOptimizer, FoldsUnaryAndComparisons) {
  Chunk C = compile("bool f() { return -(2) < 3 && !(false); }");
  optimizeChunk(C);
  VM Machine;
  auto R = Machine.run(C, {});
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Result.asBool());
}

TEST(ChunkOptimizer, KeepsDivisionByZeroTrap) {
  Chunk C = compile("int f() { return 1 / 0; }");
  optimizeChunk(C);
  VM Machine;
  auto R = Machine.run(C, {});
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMessage.find("division by zero"), std::string::npos);
}

TEST(ChunkOptimizer, RemapsJumpTargets) {
  // Folding inside both branches shifts instruction indices; control flow
  // must survive.
  Chunk C = compile(R"(
float f(float p) {
  float r = 0.0;
  if (p > 0.0) {
    r = 2.0 * 3.0;
  } else {
    r = 4.0 + 5.0;
  }
  return r;
})");
  auto Stats = optimizeChunk(C);
  EXPECT_GT(Stats.removed(), 0u);
  VM Machine;
  auto Pos = Machine.run(C, {Value::makeFloat(1.0f)});
  auto Neg = Machine.run(C, {Value::makeFloat(-1.0f)});
  ASSERT_TRUE(Pos.ok());
  ASSERT_TRUE(Neg.ok());
  EXPECT_FLOAT_EQ(Pos.Result.asFloat(), 6.0f);
  EXPECT_FLOAT_EQ(Neg.Result.asFloat(), 9.0f);
}

TEST(ChunkOptimizer, LoopsStillTerminate) {
  Chunk C = compile(R"(
int f() {
  int total = 0;
  for (int i = 0; i < 4 * 2; i = i + 1) {
    total = total + 3 - 1;
  }
  return total;
})");
  auto Stats = optimizeChunk(C);
  EXPECT_GE(Stats.ConstantsFolded, 1u);
  VM Machine;
  auto R = Machine.run(C, {});
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.Result.asInt(), 16);
}

TEST(ChunkOptimizer, IdempotentAtFixedPoint) {
  Chunk C = compile("float f(float x) { return x * (2.0 * 3.0) + (1.0 - "
                    "4.0); }");
  optimizeChunk(C);
  auto Second = optimizeChunk(C);
  EXPECT_EQ(Second.removed(), 0u);
}

TEST(ChunkOptimizer, GalleryShadersStayEquivalent) {
  // Property: optimizing any gallery shader's chunk never changes its
  // output and never increases its instruction count.
  ShaderLab Lab(4, 3);
  VM Machine;
  for (const ShaderInfo &Info : shaderGallery()) {
    auto Spec = Lab.specializePartition(Info, 0);
    ASSERT_TRUE(Spec.has_value()) << Lab.lastError();
    Chunk Optimized = Spec->compiled().OriginalChunk;
    auto Stats = optimizeChunk(Optimized);
    EXPECT_LE(Stats.InstructionsAfter, Stats.InstructionsBefore);

    auto Controls = ShaderLab::defaultControls(Info);
    std::vector<Value> Args(ShaderInfo::NumPixelParams + Controls.size());
    for (size_t P = 0; P < Controls.size(); ++P)
      Args[ShaderInfo::NumPixelParams + P] = Value::makeFloat(Controls[P]);
    for (const PixelInput &Pixel : Lab.grid().pixels()) {
      Args[0] = Pixel.UV;
      Args[1] = Pixel.P;
      Args[2] = Pixel.N;
      Args[3] = Pixel.I;
      auto Plain = Machine.run(Spec->compiled().OriginalChunk, Args);
      auto Fast = Machine.run(Optimized, Args);
      ASSERT_TRUE(Plain.ok());
      ASSERT_TRUE(Fast.ok()) << Fast.TrapMessage;
      ASSERT_TRUE(Plain.Result.equals(Fast.Result)) << Info.Name;
      EXPECT_LE(Fast.InstructionsExecuted, Plain.InstructionsExecuted);
    }
  }
}

} // namespace
