//===- tests/TestEarlyReturn.cpp - Early-return control dependence ------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression tests for early-return control dependence: statements after
/// a construct that may return execute only when none of its returns
/// fired, so they are control dependent on the predicates guarding those
/// returns. Caching an "independent" term after a *varying*-guarded early
/// return would leave the slot unfilled whenever the loader took the
/// early exit — the original bug these tests pin down.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

const char *EarlyReturnSource = R"(
float f(float a, float v) {
  if (v > 0.0) {
    return 0.5;
  }
  return pow(a, 3.0) * 2.0;
})";

TEST(EarlyReturn, NoCachingAfterDependentReturn) {
  auto Unit = parseUnit(EarlyReturnSource);
  auto Spec = specializeAndCompile(*Unit, "f", {"v"});
  ASSERT_TRUE(Spec.has_value());
  // The tail is control dependent on v; strict Rule 3 forbids caching it.
  EXPECT_EQ(Spec->Spec.Layout.slotCount(), 0u);
  EXPECT_NE(Spec->readerSource().find("pow"), std::string::npos);
}

TEST(EarlyReturn, LoaderTakingEarlyExitStaysSound) {
  auto Unit = parseUnit(EarlyReturnSource);
  auto Spec = specializeAndCompile(*Unit, "f", {"v"});
  ASSERT_TRUE(Spec.has_value());
  VM Machine;
  Cache Slots;
  // Load on the early-return path...
  std::vector<Value> LoadArgs = {Value::makeFloat(2.0f),
                                 Value::makeFloat(1.0f)};
  ASSERT_TRUE(Machine.run(Spec->LoaderChunk, LoadArgs, &Slots).ok());
  // ...then read on the other path.
  std::vector<Value> ReadArgs = {Value::makeFloat(2.0f),
                                 Value::makeFloat(-1.0f)};
  auto Read = Machine.run(Spec->ReaderChunk, ReadArgs, &Slots);
  auto Orig = Machine.run(Spec->OriginalChunk, ReadArgs);
  ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
  EXPECT_TRUE(Read.Result.equals(Orig.Result))
      << Read.Result.str() << " vs " << Orig.Result.str();
}

TEST(EarlyReturn, SpeculationRecoversTheCaching) {
  // With Section 7.1 speculation the loader hoists the store before the
  // dependent guard, making the tail cacheable again — and sound.
  auto Unit = parseUnit(EarlyReturnSource);
  SpecializerOptions Options;
  Options.AllowSpeculation = true;
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());
  EXPECT_GE(Spec->Spec.Layout.slotCount(), 1u);
  EXPECT_EQ(Spec->readerSource().find("pow"), std::string::npos)
      << Spec->readerSource();

  VM Machine;
  Cache Slots;
  std::vector<Value> LoadArgs = {Value::makeFloat(2.0f),
                                 Value::makeFloat(1.0f)}; // early exit
  ASSERT_TRUE(Machine.run(Spec->LoaderChunk, LoadArgs, &Slots).ok());
  std::vector<Value> ReadArgs = {Value::makeFloat(2.0f),
                                 Value::makeFloat(-1.0f)};
  auto Read = Machine.run(Spec->ReaderChunk, ReadArgs, &Slots);
  auto Orig = Machine.run(Spec->OriginalChunk, ReadArgs);
  ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
  EXPECT_TRUE(Read.Result.equals(Orig.Result));
}

TEST(EarlyReturn, IndependentGuardStillCaches) {
  // When the early return is guarded by a *fixed* input, loader and
  // reader take the same path, so the tail may be cached.
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  if (a > 0.0) {
    return 0.5;
  }
  return pow(0.0 - a, 3.0) * v;
})");
  auto Spec = specializeAndCompile(*Unit, "f", {"v"});
  ASSERT_TRUE(Spec.has_value());
  EXPECT_EQ(Spec->Spec.Layout.slotCount(), 1u);

  VM Machine;
  for (float A : {-2.0f, 3.0f}) {
    Cache Slots;
    std::vector<Value> Args = {Value::makeFloat(A), Value::makeFloat(2.0f)};
    ASSERT_TRUE(Machine.run(Spec->LoaderChunk, Args, &Slots).ok());
    for (float V : {-1.0f, 4.0f}) {
      std::vector<Value> ReadArgs = {Value::makeFloat(A),
                                     Value::makeFloat(V)};
      auto Read = Machine.run(Spec->ReaderChunk, ReadArgs, &Slots);
      auto Orig = Machine.run(Spec->OriginalChunk, ReadArgs);
      ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
      EXPECT_TRUE(Read.Result.equals(Orig.Result)) << "a=" << A;
    }
  }
}

TEST(EarlyReturn, ReturnInsideLoop) {
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  float i = 0.0;
  while (i < 10.0) {
    if (i * 2.0 > v) {
      return i;
    }
    i = i + 1.0;
  }
  return pow(a, 2.0);
})");
  auto Spec = specializeAndCompile(*Unit, "f", {"v"});
  ASSERT_TRUE(Spec.has_value());
  // The tail is control dependent on the in-loop return's predicate.
  EXPECT_EQ(Spec->Spec.Layout.slotCount(), 0u);

  VM Machine;
  Cache Slots;
  std::vector<Value> LoadArgs = {Value::makeFloat(3.0f),
                                 Value::makeFloat(4.0f)}; // returns early
  ASSERT_TRUE(Machine.run(Spec->LoaderChunk, LoadArgs, &Slots).ok());
  std::vector<Value> ReadArgs = {Value::makeFloat(3.0f),
                                 Value::makeFloat(100.0f)}; // runs the tail
  auto Read = Machine.run(Spec->ReaderChunk, ReadArgs, &Slots);
  auto Orig = Machine.run(Spec->OriginalChunk, ReadArgs);
  ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
  EXPECT_TRUE(Read.Result.equals(Orig.Result));
}

TEST(EarlyReturn, NestedConstructsPropagateToOuterRemainder) {
  // The return sits two constructs deep; statements after the *outer*
  // construct are still control dependent on the varying inner predicate.
  auto Unit = parseUnit(R"(
float f(float a, float p, float v) {
  if (p > 0.0) {
    if (v > 0.0) {
      return 0.25;
    }
  }
  return sqrt(a) * 3.0;
})");
  auto Spec = specializeAndCompile(*Unit, "f", {"v"});
  ASSERT_TRUE(Spec.has_value());
  EXPECT_EQ(Spec->Spec.Layout.slotCount(), 0u);

  VM Machine;
  Cache Slots;
  std::vector<Value> LoadArgs = {Value::makeFloat(4.0f),
                                 Value::makeFloat(1.0f),
                                 Value::makeFloat(1.0f)}; // early exit
  ASSERT_TRUE(Machine.run(Spec->LoaderChunk, LoadArgs, &Slots).ok());
  std::vector<Value> ReadArgs = {Value::makeFloat(4.0f),
                                 Value::makeFloat(1.0f),
                                 Value::makeFloat(-1.0f)};
  auto Read = Machine.run(Spec->ReaderChunk, ReadArgs, &Slots);
  auto Orig = Machine.run(Spec->OriginalChunk, ReadArgs);
  ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
  EXPECT_TRUE(Read.Result.equals(Orig.Result));
}

TEST(EarlyReturn, UnconditionalReturnLeavesDeadTailHarmless) {
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  return a * v;
  return pow(a, 5.0);
})");
  auto Spec = specializeAndCompile(*Unit, "f", {"v"});
  ASSERT_TRUE(Spec.has_value());
  VM Machine;
  Cache Slots;
  std::vector<Value> Args = {Value::makeFloat(2.0f), Value::makeFloat(3.0f)};
  auto Load = Machine.run(Spec->LoaderChunk, Args, &Slots);
  auto Read = Machine.run(Spec->ReaderChunk, Args, &Slots);
  ASSERT_TRUE(Load.ok());
  ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
  EXPECT_FLOAT_EQ(Read.Result.asFloat(), 6.0f);
}

TEST(EarlyReturn, DotprodStyleBothBranchesReturn) {
  // When *every* path through the construct returns, there is no
  // remainder to protect — the classic dotprod shape keeps its slot.
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  if (v > 0.0) {
    return pow(a, 2.0) + v;
  } else {
    return pow(a, 2.0) - v;
  }
})");
  auto Spec = specializeAndCompile(*Unit, "f", {"v"});
  ASSERT_TRUE(Spec.has_value());
  // Both pow(a,2.0) occurrences are under the dependent guard (Rule 3),
  // so strict mode keeps them dynamic — but nothing traps.
  VM Machine;
  Cache Slots;
  std::vector<Value> Args = {Value::makeFloat(3.0f), Value::makeFloat(1.0f)};
  ASSERT_TRUE(Machine.run(Spec->LoaderChunk, Args, &Slots).ok());
  for (float V : {-2.0f, 2.0f}) {
    std::vector<Value> ReadArgs = {Value::makeFloat(3.0f),
                                   Value::makeFloat(V)};
    auto Read = Machine.run(Spec->ReaderChunk, ReadArgs, &Slots);
    auto Orig = Machine.run(Spec->OriginalChunk, ReadArgs);
    ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
    EXPECT_TRUE(Read.Result.equals(Orig.Result));
  }
}

} // namespace
