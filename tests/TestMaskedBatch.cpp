//===- tests/TestMaskedBatch.cpp - Masked batched execution tests ------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched tier's divergent-lane contract (docs/ENGINE.md, "Masked
/// divergent-lane execution"): maskable diamonds execute both arms with
/// inactive lanes suppressed and reconverge bit-identically to the
/// scalar tiers, inactive lanes never trap, active-lane traps recover
/// the canonical per-pixel diagnostic through the engine, divergence at
/// an unmaskable branch bails the tile (never corrupts it), and the
/// instruction budget bills active lanes only.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "engine/RenderEngine.h"
#include "vm/ExecChunk.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace dspec;

namespace {

bool bitIdentical(const Value &A, const Value &B) {
  return A.Kind == B.Kind && A.I == B.I &&
         std::memcmp(A.F, B.F, sizeof(A.F)) == 0;
}

void expectSameImage(const Framebuffer &A, const Framebuffer &B,
                     const std::string &What) {
  ASSERT_EQ(A.width(), B.width());
  ASSERT_EQ(A.height(), B.height());
  for (unsigned Y = 0; Y < A.height(); ++Y)
    for (unsigned X = 0; X < A.width(); ++X)
      ASSERT_TRUE(bitIdentical(A.at(X, Y), B.at(X, Y)))
          << What << ": pixel " << X << "," << Y << " differs";
}

std::vector<unsigned char> arenaBytes(const CacheArena &Arena) {
  const unsigned char *Raw = Arena.raw();
  return std::vector<unsigned char>(Raw, Raw + Arena.totalBytes());
}

Chunk compileOne(const std::string &Source, const std::string &Name) {
  auto Unit = parseUnit(Source);
  EXPECT_TRUE(Unit->ok()) << Unit->Diags.str();
  auto Code = compileFunction(*Unit, Name);
  EXPECT_TRUE(Code.has_value());
  return *Code;
}

constexpr ExecTier kTiers[] = {ExecTier::Switch, ExecTier::Threaded,
                               ExecTier::Batched};

/// Drives VM::runBatch over one cache-less tile, one lane per entry of
/// \p LaneArgs. Results are pre-filled with an int sentinel so tests can
/// observe "results unwritten" on a bail-out.
struct TileRun {
  ExecResult R;
  std::vector<Value> Results;
};

TileRun runTile(VM &Machine, const ExecChunk &Exec,
                const std::vector<std::vector<Value>> &LaneArgs) {
  const unsigned Lanes = static_cast<unsigned>(LaneArgs.size());
  const unsigned NumArgs =
      Lanes ? static_cast<unsigned>(LaneArgs[0].size()) : 0;
  std::vector<Value> Flat;
  Flat.reserve(static_cast<size_t>(Lanes) * NumArgs);
  for (const auto &Args : LaneArgs) {
    EXPECT_EQ(Args.size(), NumArgs);
    for (const Value &V : Args)
      Flat.push_back(V);
  }
  TileRun Out;
  Out.Results.assign(Lanes, Value::makeInt(-777001));
  BatchRequest Req;
  Req.LaneArgs = Flat.data();
  Req.NumArgs = NumArgs;
  Req.Lanes = Lanes;
  Req.Results = Out.Results.data();
  Out.R = Machine.runBatch(Exec, Req);
  return Out;
}

/// Asserts a batch run succeeded without bailing and that every lane
/// matches the classic switch interpreter bit-for-bit.
void expectMatchesScalar(VM &Machine, const Chunk &Code, const ExecChunk &Exec,
                         const std::vector<std::vector<Value>> &LaneArgs) {
  TileRun Tile = runTile(Machine, Exec, LaneArgs);
  ASSERT_TRUE(Tile.R.ok()) << Tile.R.TrapMessage;
  ASSERT_FALSE(Tile.R.Diverged);
  for (size_t L = 0; L < LaneArgs.size(); ++L) {
    auto Ref = Machine.run(Code, LaneArgs[L]);
    ASSERT_TRUE(Ref.ok()) << Ref.TrapMessage;
    EXPECT_TRUE(bitIdentical(Ref.Result, Tile.Results[L]))
        << "lane " << L << " diverges from the switch interpreter";
  }
}

std::vector<Value> floatArgs(float X) { return {Value::makeFloat(X)}; }
std::vector<Value> intArgs(int I) { return {Value::makeInt(I)}; }

//===----------------------------------------------------------------------===//
// Maskable diamonds: both arms under a mask, scalar-identical results
//===----------------------------------------------------------------------===//

TEST(MaskedBatch, DivergentDiamondMatchesScalar) {
  Chunk Code = compileOne("float f(float x) {\n"
                          "  float v = 0.0;\n"
                          "  if (x > 0.5) {\n"
                          "    v = x * 2.0 + 1.0;\n"
                          "  } else {\n"
                          "    v = x - 3.0;\n"
                          "  }\n"
                          "  return v + 0.25;\n"
                          "}",
                          "f");
  ExecChunk Exec = buildExecChunk(Code);
  ASSERT_TRUE(Exec.Valid);
  EXPECT_TRUE(Exec.BatchSafe);
  EXPECT_FALSE(Exec.HasLoops);
  EXPECT_EQ(Exec.MaskableBranches, 1u);
  EXPECT_EQ(Exec.UnmaskableBranches, 0u);

  VM Machine;
  expectMatchesScalar(Machine, Code, Exec,
                      {floatArgs(0.0f), floatArgs(0.25f), floatArgs(0.75f),
                       floatArgs(1.0f), floatArgs(0.5f), floatArgs(-2.0f)});
  // Uniform tiles (all-true, all-false) must match too — they take the
  // lockstep fast path and never push a mask frame.
  expectMatchesScalar(Machine, Code, Exec,
                      {floatArgs(0.6f), floatArgs(0.9f), floatArgs(2.0f)});
  expectMatchesScalar(Machine, Code, Exec,
                      {floatArgs(0.1f), floatArgs(-1.0f), floatArgs(0.5f)});
}

TEST(MaskedBatch, NestedDiamondsMatchScalar) {
  Chunk Code = compileOne("float f(float x, float y) {\n"
                          "  float v = 1.0;\n"
                          "  if (x > 0.0) {\n"
                          "    if (y > 0.0) {\n"
                          "      v = x + y;\n"
                          "    } else {\n"
                          "      v = x - y;\n"
                          "    }\n"
                          "    v = v * 2.0;\n"
                          "  } else {\n"
                          "    v = y * 3.0;\n"
                          "  }\n"
                          "  if (v > 4.0) { v = v - 4.0; }\n"
                          "  return v;\n"
                          "}",
                          "f");
  ExecChunk Exec = buildExecChunk(Code);
  ASSERT_TRUE(Exec.Valid);
  EXPECT_TRUE(Exec.BatchSafe);
  EXPECT_EQ(Exec.MaskableBranches, 3u);
  EXPECT_EQ(Exec.UnmaskableBranches, 0u);

  auto XY = [](float X, float Y) {
    return std::vector<Value>{Value::makeFloat(X), Value::makeFloat(Y)};
  };
  VM Machine;
  // Lanes land in every arm of every diamond, including the trailing
  // if-without-else.
  expectMatchesScalar(Machine, Code, Exec,
                      {XY(1.0f, 2.0f), XY(1.0f, -2.0f), XY(-1.0f, 0.5f),
                       XY(3.0f, 3.0f), XY(-0.5f, -0.5f), XY(0.0f, 9.0f),
                       XY(2.5f, 0.0f)});
}

TEST(MaskedBatch, AllLanesFalseArmIsSkipped) {
  // Uniform-false over the active lanes jumps past the arm in lockstep:
  // the division inside never executes, so no lane traps even though
  // the divisor would be zero.
  Chunk Code = compileOne("int f(int x) {\n"
                          "  int r = 1;\n"
                          "  if (x > 10) { r = 5 / (x - x); }\n"
                          "  return r;\n"
                          "}",
                          "f");
  ExecChunk Exec = buildExecChunk(Code);
  ASSERT_TRUE(Exec.Valid);
  ASSERT_TRUE(Exec.BatchSafe);

  VM Machine;
  TileRun Tile =
      runTile(Machine, Exec, {intArgs(0), intArgs(3), intArgs(-8)});
  ASSERT_TRUE(Tile.R.ok()) << Tile.R.TrapMessage;
  ASSERT_FALSE(Tile.R.Diverged);
  for (const Value &V : Tile.Results)
    EXPECT_TRUE(bitIdentical(V, Value::makeInt(1)));
}

//===----------------------------------------------------------------------===//
// Trap discipline: inactive lanes never trap, active lanes still do
//===----------------------------------------------------------------------===//

TEST(MaskedBatch, InactiveLaneDivByZeroSuppressed) {
  // Lanes with x <= 0 keep d == 0 and are inactive inside the second
  // diamond, so the 100 / d they skip must not trap; active lanes
  // divide by their nonzero d.
  Chunk Code = compileOne("int f(int x) {\n"
                          "  int d = 0;\n"
                          "  if (x > 0) { d = x; }\n"
                          "  int r = -1;\n"
                          "  if (d > 0) { r = 100 / d; }\n"
                          "  return r;\n"
                          "}",
                          "f");
  ExecChunk Exec = buildExecChunk(Code);
  ASSERT_TRUE(Exec.Valid);
  ASSERT_TRUE(Exec.BatchSafe);
  EXPECT_EQ(Exec.MaskableBranches, 2u);

  VM Machine;
  expectMatchesScalar(Machine, Code, Exec,
                      {intArgs(0), intArgs(2), intArgs(5), intArgs(-3),
                       intArgs(100), intArgs(0)});

  // Same for modulo.
  Chunk ModCode = compileOne("int g(int x) {\n"
                             "  int d = 0;\n"
                             "  if (x > 0) { d = x; }\n"
                             "  int r = -1;\n"
                             "  if (d > 0) { r = 17 % d; }\n"
                             "  return r;\n"
                             "}",
                             "g");
  ExecChunk ModExec = buildExecChunk(ModCode);
  ASSERT_TRUE(ModExec.Valid);
  expectMatchesScalar(Machine, ModCode, ModExec,
                      {intArgs(0), intArgs(4), intArgs(-1), intArgs(6)});
}

TEST(MaskedBatch, ActiveLaneDivByZeroStillTraps) {
  // An active lane that divides by zero under a mask is a real trap —
  // masking suppresses *inactive* lanes only.
  Chunk Code = compileOne("int f(int x) {\n"
                          "  int r = 1;\n"
                          "  if (x > 10) { r = 5 / (x - x); }\n"
                          "  return r;\n"
                          "}",
                          "f");
  ExecChunk Exec = buildExecChunk(Code);
  ASSERT_TRUE(Exec.Valid);

  VM Machine;
  TileRun Tile =
      runTile(Machine, Exec, {intArgs(0), intArgs(20), intArgs(3)});
  ASSERT_TRUE(Tile.R.Trapped);
  EXPECT_FALSE(Tile.R.Diverged);
  EXPECT_NE(Tile.R.TrapMessage.find("integer division by zero"),
            std::string::npos)
      << Tile.R.TrapMessage;
}

//===----------------------------------------------------------------------===//
// Loops: uniform trip counts batch, divergent exits bail cleanly
//===----------------------------------------------------------------------===//

TEST(MaskedBatch, UniformLoopBatchesInLockstep) {
  // The clouds/rings shape: a fixed-bound octave loop. The exit branch
  // classifies unmaskable, but at runtime every lane agrees on every
  // iteration, so the whole tile runs batched.
  Chunk Code = compileOne("float f(float x) {\n"
                          "  float sum = 0.0;\n"
                          "  float amp = 1.0;\n"
                          "  for (int i = 0; i < 5; i = i + 1) {\n"
                          "    sum = sum + amp * x;\n"
                          "    amp = amp * 0.5;\n"
                          "  }\n"
                          "  return sum;\n"
                          "}",
                          "f");
  ExecChunk Exec = buildExecChunk(Code);
  ASSERT_TRUE(Exec.Valid);
  EXPECT_TRUE(Exec.BatchSafe);
  EXPECT_TRUE(Exec.HasLoops);
  EXPECT_GT(Exec.UnmaskableBranches, 0u);

  VM Machine;
  expectMatchesScalar(Machine, Code, Exec,
                      {floatArgs(0.0f), floatArgs(1.0f), floatArgs(-2.5f),
                       floatArgs(1e10f)});
}

TEST(MaskedBatch, DivergentLoopBailsWithResultsUnwritten) {
  Chunk Code = compileOne("int f(int n) {\n"
                          "  int total = 0;\n"
                          "  int i = 0;\n"
                          "  while (i < n) {\n"
                          "    total = total + i;\n"
                          "    i = i + 1;\n"
                          "  }\n"
                          "  return total;\n"
                          "}",
                          "f");
  ExecChunk Exec = buildExecChunk(Code);
  ASSERT_TRUE(Exec.Valid);
  ASSERT_TRUE(Exec.BatchSafe);

  VM Machine;
  // Uniform trip counts batch fine...
  expectMatchesScalar(Machine, Code, Exec,
                      {intArgs(4), intArgs(4), intArgs(4)});
  // ...divergent ones bail: not a trap, results untouched.
  TileRun Tile = runTile(Machine, Exec, {intArgs(1), intArgs(3)});
  EXPECT_TRUE(Tile.R.Diverged);
  EXPECT_FALSE(Tile.R.Trapped);
  for (const Value &V : Tile.Results)
    EXPECT_TRUE(bitIdentical(V, Value::makeInt(-777001)))
        << "bail-out must leave results unwritten";
}

//===----------------------------------------------------------------------===//
// Instruction budget bills active lanes only
//===----------------------------------------------------------------------===//

TEST(MaskedBatch, BudgetCountsActiveLanesOnly) {
  Chunk Code = compileOne("float f(float x) {\n"
                          "  float v = 0.0;\n"
                          "  if (x > 0.5) {\n"
                          "    v = x * 2.0 + 1.0;\n"
                          "  } else {\n"
                          "    v = x - 3.0;\n"
                          "  }\n"
                          "  return v;\n"
                          "}",
                          "f");
  ExecChunk Exec = buildExecChunk(Code);
  ASSERT_TRUE(Exec.Valid);
  VM Machine;

  // Uniform tile: every dispatch runs all lanes, so the bill is exactly
  // Lanes x the scalar instruction count.
  auto Scalar = Machine.runThreaded(Exec, floatArgs(0.9f));
  ASSERT_TRUE(Scalar.ok());
  TileRun Uniform = runTile(
      Machine, Exec, {floatArgs(0.9f), floatArgs(0.9f), floatArgs(0.9f)});
  ASSERT_TRUE(Uniform.R.ok());
  EXPECT_EQ(Uniform.R.InstructionsExecuted,
            3u * Scalar.InstructionsExecuted);
  EXPECT_GT(Uniform.R.BatchDispatches, 0u);
  EXPECT_EQ(Uniform.R.InstructionsExecuted,
            Uniform.R.BatchDispatches * 3u)
      << "no masking engaged: every dispatch bills every lane";

  // Divergent tile: masked dispatches bill only their active lanes, so
  // the bill is strictly below dispatches x lanes.
  TileRun Divergent = runTile(
      Machine, Exec, {floatArgs(0.9f), floatArgs(0.1f), floatArgs(0.7f),
                      floatArgs(0.2f)});
  ASSERT_TRUE(Divergent.R.ok());
  ASSERT_FALSE(Divergent.R.Diverged);
  EXPECT_LT(Divergent.R.InstructionsExecuted,
            Divergent.R.BatchDispatches * 4u);
  EXPECT_GT(Divergent.R.InstructionsExecuted, 0u);

  // A budget sized to the active-lane bill admits the run; one below
  // it aborts — pinning that budgeting uses the masked count.
  VM Tight;
  Tight.InstructionBudget = Divergent.R.InstructionsExecuted;
  TileRun Ok = runTile(
      Tight, Exec, {floatArgs(0.9f), floatArgs(0.1f), floatArgs(0.7f),
                    floatArgs(0.2f)});
  EXPECT_TRUE(Ok.R.ok()) << Ok.R.TrapMessage;
  Tight.InstructionBudget = Divergent.R.InstructionsExecuted - 1;
  TileRun Over = runTile(
      Tight, Exec, {floatArgs(0.9f), floatArgs(0.1f), floatArgs(0.7f),
                    floatArgs(0.2f)});
  ASSERT_TRUE(Over.R.Trapped);
  EXPECT_NE(Over.R.TrapMessage.find("instruction budget"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Engine-level: branchy fragments across every tier and thread count
//===----------------------------------------------------------------------===//

const char *kBranchyShader = R"(
// Data-dependent diamonds over uv: every tile of a real grid diverges.
vec3 branchy(vec2 uv, vec3 P, vec3 N, vec3 I, float t) {
  float v = 0.0;
  if (uv.x > t) {
    if (uv.y > 0.5) {
      v = uv.x + uv.y;
    } else {
      v = uv.x * 0.5;
    }
  } else {
    v = 1.0 - uv.x;
  }
  float w = 0.1;
  if (v > 0.75) { w = v - 0.5; }
  return vec3(v, w, v * w);
}
)";

const char *kLoopyShader = R"(
// Masked store feeding a data-dependent trip count: the loop exit
// diverges at runtime, so batched tiles bail to the threaded tier.
vec3 loopy(vec2 uv, vec3 P, vec3 N, vec3 I, float t) {
  int n = 1;
  if (uv.x > t) { n = 3; }
  float v = 0.0;
  int i = 0;
  while (i < n) {
    v = v + uv.y + 0.125;
    i = i + 1;
  }
  return vec3(v, v * 0.25, uv.x);
}
)";

TEST(MaskedEngine, BranchyDifferentialAcrossTiersAndThreads) {
  const unsigned W = 17, H = 11;
  RenderGrid Grid(W, H);
  const std::vector<float> Controls = {0.45f};

  for (const char *Source : {kBranchyShader, kLoopyShader}) {
    Chunk Code = compileOne(
        Source, Source == kBranchyShader ? "branchy" : "loopy");

    RenderEngine Ref(1);
    Ref.setExecTier(ExecTier::Switch);
    Framebuffer RefImage(W, H);
    ASSERT_TRUE(Ref.plainPass(Code, Grid, Controls, &RefImage))
        << Ref.lastTrap();

    for (ExecTier Tier : kTiers) {
      for (unsigned Threads : {1u, 4u}) {
        RenderEngine Engine(Threads);
        Engine.setExecTier(Tier);
        Framebuffer Out(W, H);
        ASSERT_TRUE(Engine.plainPass(Code, Grid, Controls, &Out))
            << Engine.lastTrap();
        expectSameImage(RefImage, Out,
                        std::string(Code.Name) + " [" + execTierName(Tier) +
                            " @" + std::to_string(Threads) + "t]");
        if (Tier == ExecTier::Batched && Code.Name == "branchy") {
          // Diamonds are maskable: tiles retire batched with real
          // masking engaged, and nothing bails.
          EXPECT_GT(Engine.lastPassStats().BatchTiles, 0u);
          EXPECT_EQ(Engine.lastPassStats().BailedTiles, 0u);
          EXPECT_LT(Engine.lastPassStats().activeFraction(), 1.0);
          EXPECT_GT(Engine.lastPassStats().activeFraction(), 0.0);
        }
        if (Tier == ExecTier::Batched && Code.Name == "loopy") {
          // The divergent loop exit bails tiles to the threaded tier.
          EXPECT_GT(Engine.lastPassStats().BailedTiles, 0u);
        }
      }
    }
  }
}

TEST(MaskedEngine, BranchySpecializedReaderIdenticalAcrossTiers) {
  // Specialize the branchy shader on its varying control: the reader
  // keeps the t-dependent diamonds, so masked reader passes (and the
  // loader-filled arena) must stay byte-identical across tiers.
  auto Unit = parseUnit(kBranchyShader);
  ASSERT_TRUE(Unit->ok()) << Unit->Diags.str();
  auto Spec = specializeAndCompile(*Unit, "branchy", {"t"});
  ASSERT_TRUE(Spec.has_value());

  const unsigned W = 13, H = 9;
  RenderGrid Grid(W, H);
  const std::vector<float> Controls = {0.45f};

  std::vector<unsigned char> ArenaRef;
  Framebuffer ReadRef(W, H);
  bool HaveRef = false;
  for (ExecTier Tier : kTiers) {
    for (unsigned Threads : {1u, 4u}) {
      RenderEngine Engine(Threads);
      Engine.setExecTier(Tier);
      std::string Tag = std::string("branchy [") + execTierName(Tier) + " @" +
                        std::to_string(Threads) + "t]";
      CacheArena Arena;
      ASSERT_TRUE(Engine.loaderPass(Spec->LoaderChunk, Spec->Spec.Layout,
                                    Grid, Controls, Arena))
          << Tag << ": " << Engine.lastTrap();
      Framebuffer Read(W, H);
      ASSERT_TRUE(
          Engine.readerPass(Spec->ReaderChunk, Grid, Controls, Arena, &Read))
          << Tag << ": " << Engine.lastTrap();
      if (!HaveRef) {
        ArenaRef = arenaBytes(Arena);
        ReadRef = Read;
        HaveRef = true;
      } else {
        EXPECT_EQ(arenaBytes(Arena), ArenaRef) << Tag;
        expectSameImage(ReadRef, Read, "reader " + Tag);
      }
    }
  }
}

TEST(MaskedEngine, ActiveLaneTrapCanonicalAcrossTiers) {
  // A trap on an active lane aborts the batch without lane attribution;
  // the engine re-runs the tile through the switch interpreter, so the
  // user-visible message is the canonical lowest-pixel diagnostic under
  // every tier.
  const char *TrapSource = R"(
vec3 trapif(vec2 uv, vec3 P, vec3 N, vec3 I, float t) {
  int k = 0;
  if (uv.x > t) { k = 2; }
  int r = 100 / k;
  float v = 0.0;
  if (r > 10) { v = 1.0; }
  return vec3(v, uv.y, 0.0);
}
)";
  Chunk Code = compileOne(TrapSource, "trapif");
  RenderGrid Grid(8, 6);

  std::string FirstMessage;
  for (ExecTier Tier : kTiers) {
    for (unsigned Threads : {1u, 4u}) {
      RenderEngine Engine(Threads);
      Engine.setExecTier(Tier);
      Framebuffer Out(8, 6);
      EXPECT_FALSE(Engine.plainPass(Code, Grid, {0.5f}, &Out))
          << execTierName(Tier);
      EXPECT_NE(Engine.lastTrap().find("pixel "), std::string::npos)
          << Engine.lastTrap();
      EXPECT_NE(Engine.lastTrap().find("integer division by zero"),
                std::string::npos)
          << Engine.lastTrap();
      if (FirstMessage.empty())
        FirstMessage = Engine.lastTrap();
      else
        EXPECT_EQ(Engine.lastTrap(), FirstMessage)
            << "trap message differs under " << execTierName(Tier) << " @"
            << Threads << "t";
    }
  }
}

} // namespace
