//===- tests/TestNetService.cpp - Event-loop front end tests ----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the event-loop network front end (src/net/) and the
/// disk-spilling unit cache: TCP end-to-end bit-identity against the
/// plain pass, pipelined reply ordering, streamed replies, the
/// slow-loris read deadline, per-client quota shedding (and that a
/// well-behaved client is untouched by a greedy neighbor), interruptible
/// accepts, and spill/warm-restart disk hits.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "engine/RenderEngine.h"
#include "net/Acceptor.h"
#include "net/NetServer.h"
#include "service/Protocol.h"
#include "service/Service.h"
#include "service/SpillStore.h"
#include "service/Transport.h"
#include "shading/ShaderGallery.h"
#include "shading/ShaderLab.h"
#include "support/ByteStream.h"
#include "support/Crc32.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

using namespace dspec;

namespace {

/// Renders \p Info with the unspecialized original — the ground truth a
/// served reply must match bit-for-bit.
Framebuffer plainReference(const ShaderInfo &Info, unsigned Width,
                           unsigned Height,
                           const std::vector<float> &Controls) {
  auto Unit = parseUnit(Info.Source);
  EXPECT_TRUE(Unit->ok()) << Unit->Diags.str();
  auto Plain = compileFunction(*Unit, Info.Name);
  EXPECT_TRUE(Plain.has_value()) << Unit->Diags.str();
  RenderGrid Grid(Width, Height);
  RenderEngine Engine(1);
  Framebuffer Out(Width, Height);
  EXPECT_TRUE(Engine.plainPass(*Plain, Grid, Controls, &Out))
      << Engine.lastTrap();
  return Out;
}

::testing::AssertionResult bitIdentical(const Framebuffer &A,
                                        const Framebuffer &B) {
  if (A.width() != B.width() || A.height() != B.height())
    return ::testing::AssertionFailure() << "dimension mismatch";
  for (unsigned Y = 0; Y < A.height(); ++Y)
    for (unsigned X = 0; X < A.width(); ++X)
      if (std::memcmp(A.at(X, Y).F, B.at(X, Y).F, sizeof(A.at(X, Y).F)) != 0)
        return ::testing::AssertionFailure()
               << "pixel (" << X << "," << Y << ") differs";
  return ::testing::AssertionSuccess();
}

/// A service plus a NetServer listening on an ephemeral TCP port, torn
/// down in order (server first — it references the service).
struct TcpServer {
  explicit TcpServer(const ServiceConfig &ServiceCfg = {},
                     NetServerConfig NetCfg = {})
      : Service(ServiceCfg) {
    NetCfg.TcpHostPort = "127.0.0.1:0";
    Server = std::make_unique<NetServer>(Service, std::move(NetCfg));
    NetServer *Raw = Server.get();
    Service.setNetStatsProvider([Raw] { return Raw->statsJson(); });
    std::string Error;
    Started = Server->start(&Error);
    EXPECT_TRUE(Started) << Error;
  }

  ~TcpServer() {
    Server->shutdownServer();
    Service.drain();
  }

  std::unique_ptr<Transport> connect() {
    std::string Error;
    auto T = connectTcp("127.0.0.1", Server->boundTcpPort(), &Error);
    EXPECT_NE(T, nullptr) << Error;
    return T;
  }

  SpecializationService Service;
  std::unique_ptr<NetServer> Server;
  bool Started = false;
};

//===----------------------------------------------------------------------===//
// TCP end to end
//===----------------------------------------------------------------------===//

TEST(NetTcp, EndToEndMatchesPlainPassForEveryShader) {
  TcpServer S;
  ASSERT_TRUE(S.Started);
  auto Client = S.connect();
  ASSERT_NE(Client, nullptr);
  for (const ShaderInfo &Info : shaderGallery()) {
    RenderRequest Request;
    Request.Shader = Info.Name;
    Request.Width = 20;
    Request.Height = 12;
    std::string Error;
    auto Reply = requestRender(*Client, Request, &Error);
    ASSERT_TRUE(Reply.has_value()) << Info.Name << ": " << Error;
    ASSERT_TRUE(Reply->ok()) << Info.Name << ": " << Reply->Error;
    Framebuffer Reference =
        plainReference(Info, 20, 12, ShaderLab::defaultControls(Info));
    EXPECT_TRUE(bitIdentical(Reply->toFramebuffer(), Reference))
        << Info.Name;
  }
  EXPECT_EQ(S.Server->stats().Accepted, 1u);
}

TEST(NetTcp, StatszCarriesNetCounters) {
  TcpServer S;
  auto Client = S.connect();
  std::string Error;
  auto Json = requestStats(*Client, &Error);
  ASSERT_TRUE(Json.has_value()) << Error;
  EXPECT_NE(Json->find("\"net\""), std::string::npos);
  EXPECT_NE(Json->find("\"quota_sheds\""), std::string::npos);
}

TEST(NetTcp, PipelinedRepliesArriveInRequestOrder) {
  // Three different-width requests (three distinct cache keys, built by
  // concurrent dispatchers) written back to back before any reply is
  // read: the FIFO slot discipline must serialize replies in request
  // order no matter which build finishes first.
  ServiceConfig Cfg;
  Cfg.Dispatchers = 3;
  TcpServer S(Cfg);
  auto Client = S.connect();
  ASSERT_NE(Client, nullptr);

  const uint32_t Widths[] = {8, 12, 16};
  std::vector<unsigned char> Burst;
  for (uint32_t W : Widths) {
    RenderRequest Request;
    Request.Shader = "checker";
    Request.Width = W;
    Request.Height = 8;
    ByteWriter Payload;
    encodeRenderRequest(Payload, Request);
    std::vector<unsigned char> Frame =
        encodeFrame(FrameType::RenderRequest, Payload.bytes());
    Burst.insert(Burst.end(), Frame.begin(), Frame.end());
  }
  ASSERT_TRUE(Client->writeAll(Burst.data(), Burst.size()));

  for (uint32_t W : Widths) {
    FrameType Type;
    std::vector<unsigned char> Payload;
    std::string Error;
    ASSERT_TRUE(readFrame(*Client, Type, Payload, &Error)) << Error;
    ASSERT_EQ(Type, FrameType::RenderReply);
    RenderReply Reply;
    ByteReader R(Payload);
    ASSERT_TRUE(decodeRenderReply(R, Reply, &Error)) << Error;
    ASSERT_TRUE(Reply.ok()) << Reply.Error;
    EXPECT_EQ(Reply.Width, W); // request order, not completion order
  }
}

TEST(NetTcp, StreamedReplyReassemblesBitIdentical) {
  NetServerConfig Net;
  Net.StreamChunkPixels = 64; // force many RenderPartial frames
  TcpServer S({}, Net);
  auto Client = S.connect();
  ASSERT_NE(Client, nullptr);

  RenderRequest Request;
  Request.Shader = "marble";
  Request.Width = 24;
  Request.Height = 16;
  Request.StreamTiles = true;
  std::string Error;
  auto Reply = requestRender(*Client, Request, &Error);
  ASSERT_TRUE(Reply.has_value()) << Error;
  ASSERT_TRUE(Reply->ok()) << Reply->Error;

  const ShaderInfo *Info = findShader("marble");
  ASSERT_NE(Info, nullptr);
  Framebuffer Reference =
      plainReference(*Info, 24, 16, ShaderLab::defaultControls(*Info));
  EXPECT_TRUE(bitIdentical(Reply->toFramebuffer(), Reference));
  // 24*16 = 384 pixels at 64 per chunk = 6 partial frames.
  EXPECT_GE(S.Server->stats().StreamedChunks, 6u);
}

TEST(NetTcp, ProtocolViolationDropsOnlyThatConnection) {
  TcpServer S;
  auto Bad = S.connect();
  auto Good = S.connect();
  ASSERT_NE(Bad, nullptr);
  ASSERT_NE(Good, nullptr);

  // A reply frame from a client is nonsense; the server must close Bad.
  std::vector<unsigned char> Frame =
      encodeFrame(FrameType::RenderReply, {});
  ASSERT_TRUE(Bad->writeAll(Frame.data(), Frame.size()));
  unsigned char Byte;
  EXPECT_FALSE(Bad->readAll(&Byte, 1)); // EOF: connection closed

  // The other connection keeps working.
  RenderRequest Request;
  Request.Shader = "stripes";
  Request.Width = 8;
  Request.Height = 8;
  std::string Error;
  auto Reply = requestRender(*Good, Request, &Error);
  ASSERT_TRUE(Reply.has_value()) << Error;
  EXPECT_TRUE(Reply->ok()) << Reply->Error;
  EXPECT_GE(S.Server->stats().ProtocolErrors, 1u);
}

//===----------------------------------------------------------------------===//
// Fairness: slow-loris reaping and per-client quotas
//===----------------------------------------------------------------------===//

TEST(NetTcp, SlowLorisIsReapedWithoutDelayingOthers) {
  NetServerConfig Net;
  Net.ReadDeadlineMillis = 150;
  TcpServer S({}, Net);

  // The attacker sends half a frame header, then stalls.
  auto Loris = S.connect();
  ASSERT_NE(Loris, nullptr);
  std::vector<unsigned char> Full =
      encodeFrame(FrameType::StatsRequest, {});
  ASSERT_TRUE(Loris->writeAll(Full.data(), 8));

  // Meanwhile a well-behaved client gets served promptly.
  auto Polite = S.connect();
  ASSERT_NE(Polite, nullptr);
  RenderRequest Request;
  Request.Shader = "checker";
  Request.Width = 8;
  Request.Height = 8;
  std::string Error;
  auto Start = std::chrono::steady_clock::now();
  auto Reply = requestRender(*Polite, Request, &Error);
  ASSERT_TRUE(Reply.has_value()) << Error;
  EXPECT_TRUE(Reply->ok()) << Reply->Error;

  // The stalled connection is closed by the deadline sweep; readAll sees
  // EOF well before the polite client would notice anything.
  unsigned char Byte;
  EXPECT_FALSE(Loris->readAll(&Byte, 1));
  double Waited = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  EXPECT_LT(Waited, 5.0);
  EXPECT_GE(S.Server->stats().DeadlineReaps, 1u);
}

TEST(NetTcp, QuotaShedsGreedyClientButNotItsNeighbor) {
  NetServerConfig Net;
  Net.QuotaRps = 0.5; // effectively: the burst and nothing more
  Net.QuotaBurst = 2.0;
  TcpServer S({}, Net);

  auto Greedy = S.connect();
  ASSERT_NE(Greedy, nullptr);
  RenderRequest Request;
  Request.Shader = "rings";
  Request.Width = 8;
  Request.Height = 8;

  unsigned Ok = 0, Shed = 0;
  for (unsigned I = 0; I < 6; ++I) {
    std::string Error;
    auto Reply = requestRender(*Greedy, Request, &Error);
    ASSERT_TRUE(Reply.has_value()) << Error;
    if (Reply->ok())
      ++Ok;
    else if (Reply->Status == RenderStatus::ShedQuota) {
      ++Shed;
      EXPECT_FALSE(Reply->Error.empty());
    }
  }
  EXPECT_EQ(Ok, 2u) << "the burst"; // bucket starts at QuotaBurst
  EXPECT_EQ(Shed, 4u);

  // A fresh, well-behaved connection has its own bucket: served, and
  // bit-identical to the plain pass despite the noisy neighbor.
  auto Polite = S.connect();
  ASSERT_NE(Polite, nullptr);
  std::string Error;
  auto Reply = requestRender(*Polite, Request, &Error);
  ASSERT_TRUE(Reply.has_value()) << Error;
  ASSERT_TRUE(Reply->ok()) << Reply->Error;
  const ShaderInfo *Info = findShader("rings");
  ASSERT_NE(Info, nullptr);
  Framebuffer Reference =
      plainReference(*Info, 8, 8, ShaderLab::defaultControls(*Info));
  EXPECT_TRUE(bitIdentical(Reply->toFramebuffer(), Reference));

  EXPECT_GE(S.Server->stats().QuotaSheds, 4u);
  EXPECT_GE(S.Service.statsz().ShedQuota, 4u);
}

//===----------------------------------------------------------------------===//
// Accept interruption (the test-shim transport keeps its fix honest)
//===----------------------------------------------------------------------===//

TEST(UnixAccept, InterruptUnblocksIndefiniteAccept) {
  std::string Path = testing::TempDir() + "dspec_accept_intr.sock";
  UnixServerSocket Listener;
  std::string Error;
  ASSERT_TRUE(Listener.listenOn(Path, &Error)) << Error;

  std::thread Waiter([&Listener] {
    // Indefinite wait: only interrupt() can end this without a client.
    EXPECT_EQ(Listener.acceptConnection(-1), nullptr);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto Start = std::chrono::steady_clock::now();
  Listener.interrupt();
  Waiter.join();
  double Waited = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  EXPECT_LT(Waited, 2.0) << "interrupt did not wake the accept";
}

//===----------------------------------------------------------------------===//
// Spill store: eviction to disk and warm restarts
//===----------------------------------------------------------------------===//

TEST(Spill, EvictedUnitWarmRestartsFromDiskBitIdentical) {
  std::string Dir = testing::TempDir() + "dspec_spill_warm";
  const ShaderInfo *Marble = findShader("marble");
  ASSERT_NE(Marble, nullptr);
  RenderRequest Request;
  Request.Shader = "marble";
  Request.Width = 16;
  Request.Height = 12;

  RenderReply Cold;
  {
    ServiceConfig Cfg;
    Cfg.CacheUnits = 1; // the second build evicts (and spills) the first
    Cfg.CacheShards = 1; // single shard: eviction order is deterministic
    Cfg.SpillDir = Dir;
    SpecializationService Service(Cfg);
    Cold = Service.render(Request);
    ASSERT_TRUE(Cold.ok()) << Cold.Error;
    RenderRequest Other;
    Other.Shader = "wood";
    Other.Width = 16;
    Other.Height = 12;
    ASSERT_TRUE(Service.render(Other).ok());
    MetricsSnapshot Stats = Service.statsz();
    EXPECT_TRUE(Stats.SpillEnabled);
    EXPECT_GE(Stats.SpillWrites, 1u) << "eviction did not spill";
    EXPECT_EQ(Stats.SpillErrors, 0u);
  }

  // A fresh process (new service, same directory): the first marble
  // request must be served from disk — no respecialization — and stay
  // bit-identical to the cold build.
  ServiceConfig Cfg;
  Cfg.SpillDir = Dir;
  SpecializationService Service(Cfg);
  RenderReply Warm = Service.render(Request);
  ASSERT_TRUE(Warm.ok()) << Warm.Error;
  EXPECT_TRUE(Warm.CacheHit) << "disk hit must read as a cache hit";
  MetricsSnapshot Stats = Service.statsz();
  EXPECT_EQ(Stats.SpillDiskHits, 1u);
  EXPECT_TRUE(bitIdentical(Warm.toFramebuffer(), Cold.toFramebuffer()));
  Framebuffer Reference = plainReference(
      *Marble, 16, 12, ShaderLab::defaultControls(*Marble));
  EXPECT_TRUE(bitIdentical(Warm.toFramebuffer(), Reference));

  // Once loaded it lives in memory again: the next request is an
  // in-memory hit, not another disk read.
  ASSERT_TRUE(Service.render(Request).ok());
  Stats = Service.statsz();
  EXPECT_EQ(Stats.SpillDiskHits, 1u);
  EXPECT_GE(Stats.Cache.Hits, 1u);
}

TEST(Spill, ByteCapEvictsOldFilesButNeverTheLast) {
  std::string Dir = testing::TempDir() + "dspec_spill_cap";
  ServiceConfig Cfg;
  Cfg.CacheUnits = 1;
  Cfg.CacheShards = 1;
  Cfg.SpillDir = Dir;
  Cfg.SpillMaxBytes = 1; // absurdly small: every spill is over cap
  SpecializationService Service(Cfg);

  const char *Shaders[] = {"marble", "wood", "granite"};
  for (const char *Name : Shaders) {
    RenderRequest Request;
    Request.Shader = Name;
    Request.Width = 8;
    Request.Height = 8;
    ASSERT_TRUE(Service.render(Request).ok()) << Name;
  }
  MetricsSnapshot Stats = Service.statsz();
  EXPECT_GE(Stats.SpillWrites, 2u);
  EXPECT_GE(Stats.SpillEvictedFiles, 1u);
  EXPECT_EQ(Stats.SpillFiles, 1u) << "cap must keep exactly the last file";
}

TEST(Spill, TcpServedWarmRestartCountsDiskHit) {
  // The acceptance path end to end: spill with one server, restart, and
  // serve the first TCP request of the new process from disk.
  std::string Dir = testing::TempDir() + "dspec_spill_tcp";
  RenderRequest Request;
  Request.Shader = "plastic";
  Request.Width = 16;
  Request.Height = 12;

  uint32_t ColdCrc = 0;
  {
    ServiceConfig Cfg;
    Cfg.CacheUnits = 1;
    Cfg.CacheShards = 1;
    Cfg.SpillDir = Dir;
    TcpServer S(Cfg);
    auto Client = S.connect();
    ASSERT_NE(Client, nullptr);
    std::string Error;
    auto Cold = requestRender(*Client, Request, &Error);
    ASSERT_TRUE(Cold.has_value()) << Error;
    ASSERT_TRUE(Cold->ok()) << Cold->Error;
    ColdCrc = pixelCrc(Cold->Pixels);
    RenderRequest Other;
    Other.Shader = "matte";
    Other.Width = 16;
    Other.Height = 12;
    auto Evictor = requestRender(*Client, Other, &Error);
    ASSERT_TRUE(Evictor.has_value()) << Error;
    ASSERT_TRUE(Evictor->ok()) << Evictor->Error;
  }

  ServiceConfig Cfg;
  Cfg.SpillDir = Dir;
  TcpServer S(Cfg);
  auto Client = S.connect();
  ASSERT_NE(Client, nullptr);
  std::string Error;
  auto Warm = requestRender(*Client, Request, &Error);
  ASSERT_TRUE(Warm.has_value()) << Error;
  ASSERT_TRUE(Warm->ok()) << Warm->Error;
  EXPECT_TRUE(Warm->CacheHit);
  EXPECT_EQ(pixelCrc(Warm->Pixels), ColdCrc);
  EXPECT_EQ(S.Service.statsz().SpillDiskHits, 1u);
}

//===----------------------------------------------------------------------===//
// Spill store eviction determinism (direct SpillStore tests)
//===----------------------------------------------------------------------===//

/// Builds one small real unit (loader-filled arena included) the store
/// can spill under any key.
std::shared_ptr<SpecializationUnit> makeSpillUnit(const char *ShaderName) {
  const ShaderInfo *Info = findShader(ShaderName);
  EXPECT_NE(Info, nullptr);
  auto Ast = parseUnit(Info->Source);
  EXPECT_TRUE(Ast->ok()) << Ast->Diags.str();
  auto Spec =
      specializeAndCompile(*Ast, Info->Name, {Info->Controls[0].Name});
  EXPECT_TRUE(Spec.has_value());
  auto U = std::make_shared<SpecializationUnit>(4u, 3u);
  U->Shader = Info->Name;
  U->Loader = Spec->LoaderChunk;
  U->Reader = Spec->ReaderChunk;
  U->Layout = Spec->Spec.Layout;
  U->Varying = {Info->Controls[0].Name};
  U->LoadControls = ShaderLab::defaultControls(*Info);
  RenderEngine Engine(1);
  EXPECT_TRUE(Engine.loaderPass(U->Loader, U->Layout, U->Grid,
                                U->LoadControls, U->Arena))
      << Engine.lastTrap();
  return U;
}

UnitKey keyWithHash(const char *Shader, uint64_t InvariantHash) {
  UnitKey K;
  K.Shader = Shader;
  K.InvariantHash = InvariantHash;
  return K;
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

/// Empties a spill directory left over from a previous run so file and
/// eviction counts start from zero.
void clearSpillDir(const std::string &Dir) {
  if (DIR *D = ::opendir(Dir.c_str())) {
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        ::unlink((Dir + "/" + Name).c_str());
    }
    ::closedir(D);
  }
}

TEST(Spill, CapEvictionBreaksEqualMtimeTiesByFileName) {
  auto Unit = makeSpillUnit("marble");
  const UnitKey Keys[3] = {keyWithHash("marble", 1),
                           keyWithHash("marble", 2),
                           keyWithHash("marble", 3)};
  const std::string Dir = testing::TempDir() + "dspec_spill_tie";
  clearSpillDir(Dir);

  uint64_t OneFile = 0;
  std::vector<std::string> Paths;
  {
    SpillStore Store;
    std::string Error;
    ASSERT_TRUE(Store.open(Dir, /*MaxBytes=*/0, &Error)) << Error;
    for (const UnitKey &K : Keys) {
      Store.store(K, Unit);
      Paths.push_back(Store.pathFor(K));
    }
    ASSERT_EQ(Store.stats().Files, 3u);
    ASSERT_EQ(Store.stats().Errors, 0u);
    OneFile = Store.stats().Bytes / 3;
  }
  // Pin every file to one mtime. mtime ticks in whole seconds, so this is
  // exactly what a burst of spills produces — the LRU signal carries no
  // information and only the tie-break decides who dies.
  struct utimbuf Times;
  Times.actime = Times.modtime = 1700000000;
  for (const std::string &P : Paths)
    ASSERT_EQ(::utime(P.c_str(), &Times), 0) << P;

  // Reopen with room for one file: two evictions, all candidates tied.
  SpillStore Store;
  std::string Error;
  ASSERT_TRUE(Store.open(Dir, OneFile + OneFile / 2, &Error)) << Error;
  EXPECT_EQ(Store.stats().Files, 1u);
  EXPECT_EQ(Store.stats().EvictedFiles, 2u);

  // Deterministic victim order: ascending file name (the hex key hash),
  // so the lexicographically-largest file is the survivor — same answer
  // in every process that ever opens this directory.
  std::vector<std::string> Sorted = Paths;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_FALSE(fileExists(Sorted[0])) << Sorted[0];
  EXPECT_FALSE(fileExists(Sorted[1])) << Sorted[1];
  EXPECT_TRUE(fileExists(Sorted[2])) << Sorted[2];
  clearSpillDir(Dir);
}

TEST(Spill, StoreNeverEvictsTheUnitJustWritten) {
  auto Unit = makeSpillUnit("wood");
  const std::string Dir = testing::TempDir() + "dspec_spill_fresh";
  clearSpillDir(Dir);
  SpillStore Store;
  std::string Error;
  ASSERT_TRUE(Store.open(Dir, /*MaxBytes=*/1, &Error)) << Error;

  // Adversarial key pair: the second store's file name sorts LOWER than
  // the first's, so a bare name-ordered tie-break would evict the file
  // being written. Both stores land within one mtime second.
  const UnitKey First = keyWithHash("wood", 0);
  UnitKey Second;
  bool Found = false;
  for (uint64_t H = 1; H < 64 && !Found; ++H) {
    Second = keyWithHash("wood", H);
    Found = Store.pathFor(Second) < Store.pathFor(First);
  }
  ASSERT_TRUE(Found) << "no lower-sorting key hash in 64 probes";

  Store.store(First, Unit);
  EXPECT_EQ(Store.stats().Files, 1u);
  EXPECT_EQ(Store.stats().EvictedFiles, 0u)
      << "a single over-cap file is never evicted";
  Store.store(Second, Unit);
  EXPECT_EQ(Store.stats().Files, 1u);
  EXPECT_EQ(Store.stats().EvictedFiles, 1u);
  EXPECT_TRUE(fileExists(Store.pathFor(Second)))
      << "the just-written unit must survive its own cap enforcement";
  EXPECT_FALSE(fileExists(Store.pathFor(First)));

  // And the survivor is genuinely servable.
  auto Back = Store.load(Second, &Error);
  ASSERT_NE(Back, nullptr) << Error;
  EXPECT_EQ(Back->Shader, "wood");
  clearSpillDir(Dir);
}

//===----------------------------------------------------------------------===//
// Streaming serde
//===----------------------------------------------------------------------===//

TEST(NetProtocol, StreamTilesFlagRoundTrips) {
  RenderRequest In;
  In.Shader = "wood";
  In.StreamTiles = true;
  ByteWriter W;
  encodeRenderRequest(W, In);
  ByteReader R(W.bytes());
  RenderRequest Out;
  std::string Error;
  ASSERT_TRUE(decodeRenderRequest(R, Out, &Error)) << Error;
  EXPECT_TRUE(Out.StreamTiles);
}

TEST(NetProtocol, PartialAndDoneRoundTrip) {
  RenderPartialChunk In;
  In.Width = 4;
  In.Height = 4;
  In.PixelOffset = 8;
  In.PixelCount = 2;
  In.Pixels = {0.25f, -1.0f, 3.5f, 0.0f, 1.0f, -0.125f};
  ByteWriter W;
  encodeRenderPartial(W, In);
  ByteReader R(W.bytes());
  RenderPartialChunk Out;
  std::string Error;
  ASSERT_TRUE(decodeRenderPartial(R, Out, &Error)) << Error;
  EXPECT_EQ(Out.PixelOffset, 8u);
  EXPECT_EQ(Out.PixelCount, 2u);
  EXPECT_EQ(Out.Pixels, In.Pixels);

  RenderStreamDone Done;
  Done.Status = RenderStatus::Ok;
  Done.Width = 4;
  Done.Height = 4;
  Done.CacheHit = true;
  Done.ServiceMicros = 1234;
  Done.NumPartials = 8;
  Done.PixelCrc = pixelCrc(In.Pixels);
  ByteWriter DW;
  encodeRenderDone(DW, Done);
  ByteReader DR(DW.bytes());
  RenderStreamDone DOut;
  ASSERT_TRUE(decodeRenderDone(DR, DOut, &Error)) << Error;
  EXPECT_EQ(DOut.Status, RenderStatus::Ok);
  EXPECT_TRUE(DOut.CacheHit);
  EXPECT_EQ(DOut.NumPartials, 8u);
  EXPECT_EQ(DOut.PixelCrc, Done.PixelCrc);
}

} // namespace
