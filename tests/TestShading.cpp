//===- tests/TestShading.cpp - Shading substrate tests ------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "shading/ShaderLab.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dspec;

namespace {

TEST(RenderGrid, DimensionsAndCount) {
  RenderGrid Grid(8, 5);
  EXPECT_EQ(Grid.width(), 8u);
  EXPECT_EQ(Grid.height(), 5u);
  EXPECT_EQ(Grid.pixelCount(), 40u);
  EXPECT_EQ(Grid.pixels().size(), 40u);
}

TEST(RenderGrid, UVCoversUnitSquare) {
  RenderGrid Grid(4, 4);
  const auto &First = Grid.pixels().front();
  const auto &Last = Grid.pixels().back();
  EXPECT_FLOAT_EQ(First.UV.F[0], 0.0f);
  EXPECT_FLOAT_EQ(First.UV.F[1], 0.0f);
  EXPECT_FLOAT_EQ(Last.UV.F[0], 1.0f);
  EXPECT_FLOAT_EQ(Last.UV.F[1], 1.0f);
}

TEST(RenderGrid, NormalsAndViewAreUnit) {
  RenderGrid Grid(7, 5);
  for (const PixelInput &In : Grid.pixels()) {
    float NLen = std::sqrt(In.N.F[0] * In.N.F[0] + In.N.F[1] * In.N.F[1] +
                           In.N.F[2] * In.N.F[2]);
    float ILen = std::sqrt(In.I.F[0] * In.I.F[0] + In.I.F[1] * In.I.F[1] +
                           In.I.F[2] * In.I.F[2]);
    EXPECT_NEAR(NLen, 1.0f, 1e-5f);
    EXPECT_NEAR(ILen, 1.0f, 1e-5f);
    // The normal of this height field always points up-ish, and the view
    // vector points toward the eye (positive z).
    EXPECT_GT(In.N.F[2], 0.0f);
    EXPECT_GT(In.I.F[2], 0.0f);
  }
}

TEST(RenderGrid, PixelsAreDistinct) {
  RenderGrid Grid(6, 3);
  for (size_t I = 1; I < Grid.pixels().size(); ++I)
    EXPECT_FALSE(Grid.pixels()[I].P.equals(Grid.pixels()[I - 1].P));
}

TEST(Framebuffer, StoresAndRenders) {
  Framebuffer FB(3, 2);
  FB.at(0, 0) = Value::makeVec3(1, 1, 1);
  FB.at(2, 1) = Value::makeVec3(0, 0, 0);
  std::string Art = FB.asciiArt();
  // 3 chars + newline per row, 2 rows.
  EXPECT_EQ(Art.size(), 8u);
  EXPECT_EQ(Art[0], '@'); // white pixel
  EXPECT_EQ(Art[6], ' '); // black pixel
}

TEST(Framebuffer, WritesPPM) {
  Framebuffer FB(2, 2);
  FB.at(0, 0) = Value::makeVec3(1, 0, 0);
  std::string Path = ::testing::TempDir() + "/dspec_test.ppm";
  ASSERT_TRUE(FB.writePPM(Path));
  FILE *File = fopen(Path.c_str(), "rb");
  ASSERT_NE(File, nullptr);
  char Header[3] = {};
  ASSERT_EQ(fread(Header, 1, 2, File), 2u);
  EXPECT_EQ(Header[0], 'P');
  EXPECT_EQ(Header[1], '6');
  fclose(File);
  remove(Path.c_str());
}

TEST(ShaderLab, DefaultControlsMatchMetadata) {
  const ShaderInfo *Info = findShader("plastic");
  ASSERT_NE(Info, nullptr);
  auto Controls = ShaderLab::defaultControls(*Info);
  ASSERT_EQ(Controls.size(), Info->Controls.size());
  for (size_t I = 0; I < Controls.size(); ++I)
    EXPECT_FLOAT_EQ(Controls[I], Info->Controls[I].Default);
}

TEST(ShaderLab, SweepValuesSpanRange) {
  ShaderLab Lab(2, 2);
  ControlParam Param{"p", 0.5f, 1.0f, 3.0f};
  auto Sweep = Lab.sweepValues(Param, 5);
  ASSERT_EQ(Sweep.size(), 5u);
  EXPECT_FLOAT_EQ(Sweep.front(), 1.0f);
  EXPECT_FLOAT_EQ(Sweep.back(), 3.0f);
  for (size_t I = 1; I < Sweep.size(); ++I)
    EXPECT_GT(Sweep[I], Sweep[I - 1]);
}

TEST(ShaderLab, MeasurePartitionProducesSaneReport) {
  ShaderLab Lab(12, 8, 3);
  const ShaderInfo *Info = findShader("plastic");
  auto Report = Lab.measurePartition(*Info, 0); // vary ka
  ASSERT_TRUE(Report.has_value()) << Lab.lastError();
  EXPECT_EQ(Report->ShaderIndex, 1u);
  EXPECT_EQ(Report->ShaderName, "plastic");
  EXPECT_EQ(Report->ParamName, "ka");
  EXPECT_GT(Report->Speedup, 0.5); // non-degenerate timing
  EXPECT_GT(Report->CacheBytes, 0u);
  EXPECT_GE(Report->BreakevenUses, 1u);
  EXPECT_GT(Report->OriginalSeconds, 0.0);
  EXPECT_GT(Report->ReaderSeconds, 0.0);
  EXPECT_GT(Report->LoaderSeconds, 0.0);
}

TEST(ShaderLab, CachesAreIndependentPerPixel) {
  ShaderLab Lab(4, 3);
  const ShaderInfo *Info = findShader("marble");
  auto Spec = Lab.specializePartition(*Info, 0);
  ASSERT_TRUE(Spec.has_value()) << Lab.lastError();
  RenderEngine &Engine = Lab.engine();
  auto Controls = ShaderLab::defaultControls(*Info);
  ASSERT_TRUE(Spec->load(Engine, Lab.grid(), Controls));
  ASSERT_EQ(Spec->arena().pixelCount(), Lab.grid().pixelCount());
  // Marble's cached values depend on per-pixel data, so neighbouring
  // caches differ.
  bool AnyDifferent = false;
  for (unsigned I = 1; I < Spec->arena().pixelCount(); ++I) {
    std::vector<Value> A = Spec->cacheValuesAt(I - 1);
    std::vector<Value> B = Spec->cacheValuesAt(I);
    ASSERT_EQ(A.size(), B.size());
    for (size_t S = 0; S < A.size(); ++S)
      if (!A[S].equals(B[S]))
        AnyDifferent = true;
  }
  EXPECT_TRUE(AnyDifferent);
}

TEST(ShaderLab, LoaderFrameEqualsOriginalFrame) {
  ShaderLab Lab(5, 4);
  const ShaderInfo *Info = findShader("checker");
  auto Spec = Lab.specializePartition(*Info, 2); // ka
  ASSERT_TRUE(Spec.has_value());
  RenderEngine &Engine = Lab.engine();
  auto Controls = ShaderLab::defaultControls(*Info);
  Framebuffer Reference(5, 4);
  ASSERT_TRUE(
      Spec->originalFrame(Engine, Lab.grid(), Controls, &Reference));
  ASSERT_TRUE(Spec->load(Engine, Lab.grid(), Controls));
  // Loading again and reading with unchanged controls reproduces the
  // original image.
  Framebuffer FromReader(5, 4);
  ASSERT_TRUE(Spec->readFrame(Engine, Lab.grid(), Controls, &FromReader));
  for (unsigned Y = 0; Y < 4; ++Y)
    for (unsigned X = 0; X < 5; ++X)
      EXPECT_TRUE(FromReader.at(X, Y).equals(Reference.at(X, Y)));
}

TEST(ShaderLab, GalleryImagesAreNonTrivial) {
  // Every shader should produce an image with some variation (not a
  // constant color) at default controls.
  ShaderLab Lab(8, 6);
  RenderEngine &Engine = Lab.engine();
  for (const ShaderInfo &Info : shaderGallery()) {
    auto Spec = Lab.specializePartition(Info, 0);
    ASSERT_TRUE(Spec.has_value()) << Lab.lastError();
    Framebuffer FB(8, 6);
    auto Controls = ShaderLab::defaultControls(Info);
    ASSERT_TRUE(Spec->originalFrame(Engine, Lab.grid(), Controls, &FB));
    bool Varies = false;
    for (unsigned Y = 0; Y < 6 && !Varies; ++Y)
      for (unsigned X = 1; X < 8 && !Varies; ++X)
        if (!FB.at(X, Y).equals(FB.at(0, 0)))
          Varies = true;
    EXPECT_TRUE(Varies) << Info.Name << " renders a constant image";
    // Colors are clamped to [0, 1].
    for (unsigned Y = 0; Y < 6; ++Y)
      for (unsigned X = 0; X < 8; ++X)
        for (int C = 0; C < 3; ++C) {
          EXPECT_GE(FB.at(X, Y).F[C], 0.0f);
          EXPECT_LE(FB.at(X, Y).F[C], 1.0f);
        }
  }
}

TEST(ShaderLab, VaryingParamActuallyChangesImages) {
  // Guards against dead control parameters: sweeping any control must
  // change at least one pixel somewhere in the sweep.
  ShaderLab Lab(8, 6);
  RenderEngine &Engine = Lab.engine();
  for (const ShaderInfo &Info : shaderGallery()) {
    for (size_t C = 0; C < Info.Controls.size(); ++C) {
      auto Spec = Lab.specializePartition(Info, C);
      ASSERT_TRUE(Spec.has_value()) << Lab.lastError();
      auto Controls = ShaderLab::defaultControls(Info);
      Framebuffer Base(8, 6);
      Controls[C] = Info.Controls[C].SweepMin;
      ASSERT_TRUE(
          Spec->originalFrame(Engine, Lab.grid(), Controls, &Base));
      Controls[C] = Info.Controls[C].SweepMax;
      Framebuffer Swept(8, 6);
      ASSERT_TRUE(
          Spec->originalFrame(Engine, Lab.grid(), Controls, &Swept));
      bool Changed = false;
      for (unsigned Y = 0; Y < 6 && !Changed; ++Y)
        for (unsigned X = 0; X < 8 && !Changed; ++X)
          if (!Base.at(X, Y).equals(Swept.at(X, Y)))
            Changed = true;
      EXPECT_TRUE(Changed) << Info.Name << "/" << Info.Controls[C].Name
                           << " appears to be a dead control";
    }
  }
}

} // namespace
