//===- tests/TestPaperClaims.cpp - Deterministic paper claims -----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's claims that do not involve timing are fully deterministic
/// in this implementation, so they can be *asserted* rather than merely
/// benchmarked: the Figure 8 cache statistics, the Section 3.3 size
/// bounds for every partition, and the Section 5.3 total-memory check.
/// (Timing-shaped claims — Figures 7, 9, 10, Section 5.2 — live in the
/// bench binaries; see EXPERIMENTS.md.)
///
//===----------------------------------------------------------------------===//

#include "shading/ShaderLab.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace dspec;

namespace {

struct GalleryLayouts {
  std::vector<unsigned> Bytes;                       // per partition
  std::vector<SpecializationStats> Stats;            // per partition
  std::vector<std::string> Names;

  static const GalleryLayouts &get() {
    static const GalleryLayouts Data = [] {
      GalleryLayouts Out;
      ShaderLab Lab(2, 2);
      for (const ShaderInfo &Info : shaderGallery()) {
        for (size_t C = 0; C < Info.Controls.size(); ++C) {
          auto Spec = Lab.specializePartition(Info, C);
          EXPECT_TRUE(Spec.has_value()) << Lab.lastError();
          Out.Bytes.push_back(Spec->compiled().Spec.Layout.totalBytes());
          Out.Stats.push_back(Spec->compiled().Spec.Stats);
          Out.Names.push_back(Info.Name + "/" + Info.Controls[C].Name);
        }
      }
      return Out;
    }();
    return Data;
  }
};

TEST(PaperClaims, Figure8MeanAndMedianCacheBytes) {
  const auto &G = GalleryLayouts::get();
  ASSERT_EQ(G.Bytes.size(), 131u);

  double Sum = 0;
  for (unsigned B : G.Bytes)
    Sum += B;
  double Mean = Sum / G.Bytes.size();

  std::vector<unsigned> Sorted = G.Bytes;
  std::sort(Sorted.begin(), Sorted.end());
  unsigned Median = Sorted[Sorted.size() / 2];

  // Paper: mean 22 bytes, median 20 bytes. Layouts are deterministic, so
  // these hold exactly for this gallery (tolerances allow future shader
  // tweaks without losing the claim's force).
  EXPECT_GE(Mean, 18.0);
  EXPECT_LE(Mean, 26.0);
  EXPECT_GE(Median, 16u);
  EXPECT_LE(Median, 24u);
}

TEST(PaperClaims, Figure8CachesAreSmall) {
  // "Caches are typically quite small (tens of bytes)."
  const auto &G = GalleryLayouts::get();
  for (size_t I = 0; I < G.Bytes.size(); ++I)
    EXPECT_LE(G.Bytes[I], 64u) << G.Names[I];
}

TEST(PaperClaims, Section53TotalMemoryFitsWorkstation) {
  // 307,200 caches for a 640x480 image, "well within the physical memory
  // size of a typical workstation" (64 MB in 1996).
  const auto &G = GalleryLayouts::get();
  unsigned Worst = *std::max_element(G.Bytes.begin(), G.Bytes.end());
  double WorstTotalMB = Worst * 640.0 * 480.0 / (1024.0 * 1024.0);
  EXPECT_LT(WorstTotalMB, 64.0);
}

TEST(PaperClaims, Section33SplitSizeBoundForEveryPartition) {
  // "In practice, the sum of the loader and reader sizes has been less
  // than twice the size of the fragment" — checked for all 131 splits.
  const auto &G = GalleryLayouts::get();
  for (size_t I = 0; I < G.Stats.size(); ++I) {
    const SpecializationStats &S = G.Stats[I];
    EXPECT_LT(S.LoaderTerms + S.ReaderTerms, 2 * S.NormalizedTerms)
        << G.Names[I];
    // Loader is the instrumented original: fragment plus one store per
    // cached term, nothing else.
    EXPECT_EQ(S.LoaderTerms, S.NormalizedTerms + S.CachedExprs)
        << G.Names[I];
    // Reader is a strict projection.
    EXPECT_LT(S.ReaderTerms, S.NormalizedTerms) << G.Names[I];
  }
}

TEST(PaperClaims, EveryPartitionCachesSomething) {
  // Each shader exposes enough invariant computation that every single
  // control-parameter partition yields a non-empty cache (this is what
  // makes Figure 7's "always at least 1.0x" non-vacuous).
  const auto &G = GalleryLayouts::get();
  for (size_t I = 0; I < G.Bytes.size(); ++I)
    EXPECT_GT(G.Bytes[I], 0u) << G.Names[I];
}

TEST(PaperClaims, TenLoaderReaderPairsPerShaderOrder) {
  // "A typical shader has on the order of 10 control parameters,
  // requiring 10 loader/reader pairs."
  for (const ShaderInfo &Info : shaderGallery()) {
    EXPECT_GE(Info.Controls.size(), 10u) << Info.Name;
    EXPECT_LE(Info.Controls.size(), 16u) << Info.Name;
  }
}

} // namespace
