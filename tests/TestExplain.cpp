//===- tests/TestExplain.cpp - Decision report tests --------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

const char *Source = R"(
float f(float a, float b, float v) {
  float heavy = pow(a, b) + sqrt(a);
  if (v > 0.0) {
    return heavy * v;
  }
  return v;
})";

TEST(Explain, EmptyUnlessRequested) {
  auto Unit = parseUnit(Source);
  auto Spec = specializeAndCompile(*Unit, "f", {"v"});
  ASSERT_TRUE(Spec.has_value());
  EXPECT_TRUE(Spec->Spec.Explanation.empty());
}

TEST(Explain, ReportsPartitionAndSlots) {
  auto Unit = parseUnit(Source);
  SpecializerOptions Options;
  Options.CollectExplanation = true;
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());
  const std::string &Report = Spec->Spec.Explanation;
  EXPECT_NE(Report.find("varying = {v}"), std::string::npos) << Report;
  EXPECT_NE(Report.find("fixed = {a, b}"), std::string::npos) << Report;
  EXPECT_NE(Report.find("slot0"), std::string::npos) << Report;
  EXPECT_NE(Report.find("pow(a, b) + sqrt(a)"), std::string::npos) << Report;
  EXPECT_NE(Report.find("expression labels:"), std::string::npos);
  EXPECT_NE(Report.find("statement labels:"), std::string::npos);
}

TEST(Explain, LabelsMatchStatsCounts) {
  auto Unit = parseUnit(Source);
  SpecializerOptions Options;
  Options.CollectExplanation = true;
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());
  const auto &S = Spec->Spec.Stats;
  std::string Expected = std::to_string(S.StaticExprs) + " static, " +
                         std::to_string(S.CachedExprs) + " cached, " +
                         std::to_string(S.DynamicExprs) + " dynamic";
  EXPECT_NE(Spec->Spec.Explanation.find(Expected), std::string::npos)
      << Spec->Spec.Explanation;
}

TEST(Explain, MentionsPhiCopies) {
  auto Unit = parseUnit(R"(
float f(float a, float p, float v) {
  float x = sqrt(a);
  if (p > 0.0) { x = pow(a, 3.0); }
  return x * v;
})");
  SpecializerOptions Options;
  Options.CollectExplanation = true;
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());
  EXPECT_NE(Spec->Spec.Explanation.find("/* phi */"), std::string::npos)
      << Spec->Spec.Explanation;
}

TEST(Explain, ReportsSpeculativeHoists) {
  auto Unit = parseUnit(R"(
float f(float a, float v) {
  float r = 1.0;
  if (v > 0.0) { r = pow(a, 4.0) + sqrt(a); }
  return r;
})");
  SpecializerOptions Options;
  Options.CollectExplanation = true;
  Options.AllowSpeculation = true;
  auto Spec = specializeAndCompile(*Unit, "f", {"v"}, Options);
  ASSERT_TRUE(Spec.has_value());
  EXPECT_NE(Spec->Spec.Explanation.find("speculative hoists"),
            std::string::npos)
      << Spec->Spec.Explanation;
}

TEST(Explain, GoldenFigure2Listings) {
  // The generated loader and reader for the paper's Figure 1 fragment
  // must match Figure 2 structurally, token for token.
  auto Unit = parseUnit(R"(
float dotprod(float x1, float y1, float z1,
              float x2, float y2, float z2, float scale) {
  if (scale != 0.0) {
    return (x1*x2 + y1*y2 + z1*z2) / scale;
  } else {
    return -1.0;
  }
})");
  SpecializerOptions Options;
  Options.EnableReassociate = true;
  auto Spec = specializeAndCompile(*Unit, "dotprod", {"z1", "z2"}, Options);
  ASSERT_TRUE(Spec.has_value());

  const char *ExpectedLoader =
      "float dotprod_load(float x1, float y1, float z1, float x2, float y2, "
      "float z2, float scale, cache)\n"
      "{\n"
      "  if (scale != 0.0)\n"
      "  {\n"
      "    return ((cache->slot0 = x1 * x2 + y1 * y2) + z1 * z2) / scale;\n"
      "  }\n"
      "  else\n"
      "  {\n"
      "    return -1.0;\n"
      "  }\n"
      "}\n";
  const char *ExpectedReader =
      "float dotprod_read(float x1, float y1, float z1, float x2, float y2, "
      "float z2, float scale, cache)\n"
      "{\n"
      "  if (scale != 0.0)\n"
      "  {\n"
      "    return (cache->slot0 + z1 * z2) / scale;\n"
      "  }\n"
      "  else\n"
      "  {\n"
      "    return -1.0;\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(Spec->loaderSource(), ExpectedLoader);
  EXPECT_EQ(Spec->readerSource(), ExpectedReader);
}

} // namespace
