//===- tests/TestService.cpp - Specialization service tests -----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the specialization service: the framed protocol
/// over the loopback transport, the bit-identity of served frames against
/// the unspecialized plain pass (the paper's equivalence guarantee,
/// through the whole server), load shedding, and graceful drain.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "engine/RenderEngine.h"
#include "service/Protocol.h"
#include "service/Service.h"
#include "service/Transport.h"
#include "shading/ShaderGallery.h"
#include "shading/ShaderLab.h"
#include "support/ByteStream.h"

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <thread>
#include <vector>

using namespace dspec;

namespace {

/// Renders \p Info with the unspecialized original — the ground truth a
/// service reply must match bit-for-bit.
Framebuffer plainReference(const ShaderInfo &Info, unsigned Width,
                           unsigned Height,
                           const std::vector<float> &Controls) {
  auto Unit = parseUnit(Info.Source);
  EXPECT_TRUE(Unit->ok()) << Unit->Diags.str();
  auto Plain = compileFunction(*Unit, Info.Name);
  EXPECT_TRUE(Plain.has_value()) << Unit->Diags.str();
  RenderGrid Grid(Width, Height);
  RenderEngine Engine(1);
  Framebuffer Out(Width, Height);
  EXPECT_TRUE(Engine.plainPass(*Plain, Grid, Controls, &Out))
      << Engine.lastTrap();
  return Out;
}

::testing::AssertionResult bitIdentical(const Framebuffer &A,
                                        const Framebuffer &B) {
  if (A.width() != B.width() || A.height() != B.height())
    return ::testing::AssertionFailure() << "dimension mismatch";
  for (unsigned Y = 0; Y < A.height(); ++Y)
    for (unsigned X = 0; X < A.width(); ++X)
      if (std::memcmp(A.at(X, Y).F, B.at(X, Y).F, sizeof(A.at(X, Y).F)) != 0)
        return ::testing::AssertionFailure()
               << "pixel (" << X << "," << Y << ") differs";
  return ::testing::AssertionSuccess();
}

//===----------------------------------------------------------------------===//
// Protocol serde and framing
//===----------------------------------------------------------------------===//

TEST(ServiceProtocol, RenderRequestRoundTrips) {
  RenderRequest In;
  In.Shader = "wood";
  In.Width = 17;
  In.Height = 9;
  In.Varying = {"grain", "ringscale"};
  In.Controls = {1.0f, 2.5f, -3.25f};
  In.DeadlineMillis = 250;
  In.JoinNormalize = false;
  In.Reassociate = true;
  In.Speculation = true;
  In.CacheByteLimit = 24;

  ByteWriter W;
  encodeRenderRequest(W, In);
  ByteReader R(W.bytes());
  RenderRequest Out;
  std::string Error;
  ASSERT_TRUE(decodeRenderRequest(R, Out, &Error)) << Error;
  EXPECT_EQ(Out.Shader, In.Shader);
  EXPECT_EQ(Out.Width, In.Width);
  EXPECT_EQ(Out.Height, In.Height);
  EXPECT_EQ(Out.Varying, In.Varying);
  ASSERT_EQ(Out.Controls.size(), In.Controls.size());
  for (size_t I = 0; I < In.Controls.size(); ++I)
    EXPECT_EQ(std::memcmp(&Out.Controls[I], &In.Controls[I], 4), 0);
  EXPECT_EQ(Out.DeadlineMillis, In.DeadlineMillis);
  EXPECT_EQ(Out.JoinNormalize, In.JoinNormalize);
  EXPECT_EQ(Out.Reassociate, In.Reassociate);
  EXPECT_EQ(Out.Speculation, In.Speculation);
  EXPECT_EQ(Out.CacheByteLimit, In.CacheByteLimit);
}

TEST(ServiceProtocol, RenderReplyRoundTripsBitExactPixels) {
  RenderReply In;
  In.Status = RenderStatus::Ok;
  In.Width = 2;
  In.Height = 1;
  // Include values whose bit patterns round-trips must preserve exactly.
  In.Pixels = {0.1f, -0.0f, 1e-38f, 3.0f, 0.25f, 1234.5f};
  In.CacheHit = true;
  In.ServiceMicros = 98765;

  ByteWriter W;
  encodeRenderReply(W, In);
  ByteReader R(W.bytes());
  RenderReply Out;
  std::string Error;
  ASSERT_TRUE(decodeRenderReply(R, Out, &Error)) << Error;
  EXPECT_EQ(Out.Status, In.Status);
  EXPECT_EQ(Out.Width, In.Width);
  EXPECT_EQ(Out.Height, In.Height);
  ASSERT_EQ(Out.Pixels.size(), In.Pixels.size());
  EXPECT_EQ(std::memcmp(Out.Pixels.data(), In.Pixels.data(),
                        In.Pixels.size() * sizeof(float)),
            0);
  EXPECT_EQ(Out.CacheHit, In.CacheHit);
  EXPECT_EQ(Out.ServiceMicros, In.ServiceMicros);
}

TEST(ServiceProtocol, FrameRejectsCorruption) {
  auto [ClientEnd, ServerEnd] = makeLoopbackPair();
  std::vector<unsigned char> Payload = {1, 2, 3, 4};

  // Flipping one payload byte after framing must fail the CRC check.
  std::vector<unsigned char> Frame =
      encodeFrame(FrameType::StatsRequest, Payload);
  Frame.back() ^= 0xff;
  ASSERT_TRUE(ClientEnd->writeAll(Frame.data(), Frame.size()));

  FrameType Type;
  std::vector<unsigned char> Got;
  std::string Error;
  EXPECT_FALSE(readFrame(*ServerEnd, Type, Got, &Error));
  EXPECT_NE(Error.find("CRC"), std::string::npos) << Error;

  // Bad magic.
  auto [C2, S2] = makeLoopbackPair();
  Frame = encodeFrame(FrameType::StatsRequest, Payload);
  Frame[0] ^= 0xff;
  ASSERT_TRUE(C2->writeAll(Frame.data(), Frame.size()));
  Error.clear();
  EXPECT_FALSE(readFrame(*S2, Type, Got, &Error));
  EXPECT_FALSE(Error.empty());

  // Clean EOF: shutdown with no bytes leaves Error empty.
  auto [C3, S3] = makeLoopbackPair();
  C3->shutdown();
  Error = "sentinel";
  EXPECT_FALSE(readFrame(*S3, Type, Got, &Error));
  EXPECT_TRUE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Service request handling
//===----------------------------------------------------------------------===//

TEST(Service, RejectsMalformedRequests) {
  ServiceConfig Config;
  Config.MaxPixels = 1u << 16;
  SpecializationService Service(Config);

  RenderRequest Request;
  Request.Shader = "no-such-shader";
  EXPECT_EQ(Service.render(Request).Status, RenderStatus::BadRequest);

  Request.Shader = "plastic";
  Request.Width = 0;
  EXPECT_EQ(Service.render(Request).Status, RenderStatus::BadRequest);

  Request.Width = 512;
  Request.Height = 512; // 256k pixels > the configured 64k ceiling
  EXPECT_EQ(Service.render(Request).Status, RenderStatus::BadRequest);

  Request.Width = 8;
  Request.Height = 8;
  Request.Varying = {"no-such-control"};
  EXPECT_EQ(Service.render(Request).Status, RenderStatus::BadRequest);

  Request.Varying.clear();
  Request.Controls = {1.0f}; // plastic takes more controls than this
  EXPECT_EQ(Service.render(Request).Status, RenderStatus::BadRequest);

  MetricsSnapshot Stats = Service.statsz();
  EXPECT_EQ(Stats.BadRequests, 5u);
  EXPECT_EQ(Stats.RequestsTotal, 5u);
}

TEST(Service, MatchesPlainPassForEveryShader) {
  SpecializationService Service;
  for (const ShaderInfo &Info : shaderGallery()) {
    RenderRequest Request;
    Request.Shader = Info.Name;
    Request.Width = 24;
    Request.Height = 16;
    RenderReply Reply = Service.render(Request);
    ASSERT_TRUE(Reply.ok()) << Info.Name << ": " << Reply.Error;
    EXPECT_FALSE(Reply.CacheHit) << Info.Name;
    Framebuffer Reference = plainReference(
        Info, 24, 16, ShaderLab::defaultControls(Info));
    EXPECT_TRUE(bitIdentical(Reply.toFramebuffer(), Reference)) << Info.Name;
  }
  MetricsSnapshot Stats = Service.statsz();
  EXPECT_EQ(Stats.RequestsOk, shaderGallery().size());
  EXPECT_EQ(Stats.Cache.Misses, shaderGallery().size());
}

TEST(Service, CacheHitsStayBitIdenticalAcrossVaryingValues) {
  ServiceConfig Config;
  Config.RenderThreads = 4; // exercise the tiled multi-threaded reader
  SpecializationService Service(Config);
  const ShaderInfo *Info = findShader("marble");
  ASSERT_NE(Info, nullptr);

  for (unsigned Frame = 0; Frame < 4; ++Frame) {
    RenderRequest Request;
    Request.Shader = Info->Name;
    Request.Width = 24;
    Request.Height = 16;
    // Drag the first control across frames: same unit, different value.
    Request.Controls = ShaderLab::defaultControls(*Info);
    Request.Controls[0] =
        Info->Controls[0].SweepMin +
        static_cast<float>(Frame) * 0.25f *
            (Info->Controls[0].SweepMax - Info->Controls[0].SweepMin);
    RenderReply Reply = Service.render(Request);
    ASSERT_TRUE(Reply.ok()) << Reply.Error;
    EXPECT_EQ(Reply.CacheHit, Frame > 0);
    Framebuffer Reference =
        plainReference(*Info, 24, 16, Request.Controls);
    EXPECT_TRUE(bitIdentical(Reply.toFramebuffer(), Reference))
        << "frame " << Frame;
  }
  MetricsSnapshot Stats = Service.statsz();
  EXPECT_EQ(Stats.Cache.Misses, 1u);
  EXPECT_EQ(Stats.Cache.Hits, 3u);
}

TEST(Service, ShedsWhenQueueIsFull) {
  ServiceConfig Config;
  Config.QueueCapacity = 1;
  Config.MaxBatch = 1;
  SpecializationService Service(Config);

  RenderRequest Request;
  Request.Shader = "rings"; // most expensive build in the gallery
  std::vector<std::future<RenderReply>> Futures;
  for (unsigned I = 0; I < 64; ++I)
    Futures.push_back(Service.submit(Request));

  unsigned Ok = 0, Shed = 0;
  for (std::future<RenderReply> &F : Futures) {
    RenderReply Reply = F.get();
    if (Reply.ok())
      ++Ok;
    else if (Reply.Status == RenderStatus::ShedQueueFull) {
      ++Shed;
      EXPECT_NE(Reply.Error.find("queue full"), std::string::npos);
    }
  }
  EXPECT_EQ(Ok + Shed, 64u);
  EXPECT_GT(Ok, 0u);
  // A 64-deep burst into a 1-deep queue must shed (the first build takes
  // milliseconds while submission takes microseconds).
  EXPECT_GT(Shed, 0u);
  EXPECT_EQ(Service.statsz().ShedQueueFull, Shed);
}

TEST(Service, ShedsQueuedRequestsPastTheirDeadline) {
  ServiceConfig Config;
  Config.Dispatchers = 1;
  SpecializationService Service(Config);

  // Occupy the single dispatcher with an expensive cold build...
  RenderRequest Blocker;
  Blocker.Shader = "rings";
  Blocker.Width = 128;
  Blocker.Height = 128;
  std::future<RenderReply> BlockerDone = Service.submit(Blocker);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // ...so a 1ms-deadline request queued behind it is shed at dispatch.
  RenderRequest Urgent;
  Urgent.Shader = "plastic";
  Urgent.DeadlineMillis = 1;
  RenderReply Reply = Service.submit(Urgent).get();
  EXPECT_EQ(Reply.Status, RenderStatus::ShedDeadline);
  EXPECT_NE(Reply.Error.find("deadline"), std::string::npos);

  EXPECT_TRUE(BlockerDone.get().ok());
  EXPECT_EQ(Service.statsz().ShedDeadline, 1u);
}

TEST(Service, DrainRejectsNewWorkAndIsIdempotent) {
  SpecializationService Service;
  RenderRequest Request;
  Request.Shader = "plastic";
  ASSERT_TRUE(Service.render(Request).ok());

  Service.drain();
  Service.drain(); // second drain is a no-op, not a crash

  RenderReply Reply = Service.render(Request);
  EXPECT_EQ(Reply.Status, RenderStatus::Draining);
  EXPECT_EQ(Service.statsz().RejectedDraining, 1u);
}

//===----------------------------------------------------------------------===//
// End-to-end over the loopback transport
//===----------------------------------------------------------------------===//

/// A live in-process server: a service plus a connection thread serving
/// the server end of a loopback pair.
struct LoopbackServer {
  SpecializationService Service;
  std::unique_ptr<Transport> Client;
  std::unique_ptr<Transport> ServerEnd;
  std::thread Thread;

  explicit LoopbackServer(const ServiceConfig &Config = {})
      : Service(Config) {
    auto Pair = makeLoopbackPair();
    Client = std::move(Pair.first);
    ServerEnd = std::move(Pair.second);
    Thread = std::thread([this] { serveConnection(*ServerEnd, Service); });
  }

  ~LoopbackServer() {
    Client->shutdown();
    Thread.join();
  }
};

TEST(ServiceLoopback, EndToEndMatchesPlainPassForEveryShader) {
  for (unsigned Threads : {1u, 4u}) {
    ServiceConfig Config;
    Config.RenderThreads = Threads;
    LoopbackServer Server(Config);
    for (const ShaderInfo &Info : shaderGallery()) {
      RenderRequest Request;
      Request.Shader = Info.Name;
      Request.Width = 20;
      Request.Height = 12;
      std::string Error;
      auto Reply = requestRender(*Server.Client, Request, &Error);
      ASSERT_TRUE(Reply.has_value()) << Error;
      ASSERT_TRUE(Reply->ok()) << Info.Name << ": " << Reply->Error;
      Framebuffer Reference = plainReference(
          Info, 20, 12, ShaderLab::defaultControls(Info));
      EXPECT_TRUE(bitIdentical(Reply->toFramebuffer(), Reference))
          << Info.Name << " with " << Threads << " render thread(s)";
    }
  }
}

TEST(ServiceLoopback, SecondRequestIsACacheHit) {
  LoopbackServer Server;
  RenderRequest Request;
  Request.Shader = "checker";
  std::string Error;
  auto First = requestRender(*Server.Client, Request, &Error);
  ASSERT_TRUE(First.has_value()) << Error;
  EXPECT_FALSE(First->CacheHit);
  auto Second = requestRender(*Server.Client, Request, &Error);
  ASSERT_TRUE(Second.has_value()) << Error;
  EXPECT_TRUE(Second->CacheHit);
  ASSERT_TRUE(Second->ok());
  EXPECT_EQ(std::memcmp(First->Pixels.data(), Second->Pixels.data(),
                        First->Pixels.size() * sizeof(float)),
            0);
}

TEST(ServiceLoopback, StatszReportsJsonSnapshot) {
  LoopbackServer Server;
  RenderRequest Request;
  Request.Shader = "stripes";
  std::string Error;
  ASSERT_TRUE(requestRender(*Server.Client, Request, &Error)) << Error;

  auto Json = requestStats(*Server.Client, &Error);
  ASSERT_TRUE(Json.has_value()) << Error;
  EXPECT_NE(Json->find("\"requests\""), std::string::npos);
  EXPECT_NE(Json->find("\"unit_cache\""), std::string::npos);
  EXPECT_NE(Json->find("\"latency_seconds\""), std::string::npos);
  EXPECT_NE(Json->find("\"total\":1"), std::string::npos);
}

TEST(ServiceLoopback, BadRequestGetsStructuredErrorNotDisconnect) {
  LoopbackServer Server;
  RenderRequest Request;
  Request.Shader = "not-a-shader";
  std::string Error;
  auto Reply = requestRender(*Server.Client, Request, &Error);
  ASSERT_TRUE(Reply.has_value()) << Error;
  EXPECT_EQ(Reply->Status, RenderStatus::BadRequest);
  EXPECT_FALSE(Reply->Error.empty());

  // The connection survives a rejected request.
  Request.Shader = "plastic";
  auto Good = requestRender(*Server.Client, Request, &Error);
  ASSERT_TRUE(Good.has_value()) << Error;
  EXPECT_TRUE(Good->ok());
}

TEST(ServiceLoopback, CorruptFrameDropsConnection) {
  LoopbackServer Server;
  ByteWriter W;
  RenderRequest Request;
  Request.Shader = "plastic";
  encodeRenderRequest(W, Request);
  std::vector<unsigned char> Frame =
      encodeFrame(FrameType::RenderRequest, W.bytes());
  Frame.back() ^= 0xff; // corrupt the payload => CRC mismatch
  ASSERT_TRUE(Server.Client->writeAll(Frame.data(), Frame.size()));

  // The server drops the connection instead of answering garbage.
  FrameType Type;
  std::vector<unsigned char> Payload;
  std::string Error;
  EXPECT_FALSE(readFrame(*Server.Client, Type, Payload, &Error));
}

} // namespace
