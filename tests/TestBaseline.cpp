//===- tests/TestBaseline.cpp - Memoization baseline tests --------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baseline/Memoizer.h"
#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

const char *FragmentSource =
    "float f(float a, float v) { return pow(a, 2.0) * v + sqrt(a); }";

struct Fixture {
  std::unique_ptr<CompilationUnit> Unit;
  Chunk Code;

  Fixture() {
    Unit = parseUnit(FragmentSource);
    Code = *compileFunction(*Unit, "f");
  }
};

TEST(MemoTable, LookupAndInsert) {
  MemoTable Table(4);
  EXPECT_EQ(Table.lookup({1.0f}), nullptr);
  Table.insert({1.0f}, Value::makeFloat(42.0f));
  const Value *Hit = Table.lookup({1.0f});
  ASSERT_NE(Hit, nullptr);
  EXPECT_FLOAT_EQ(Hit->asFloat(), 42.0f);
  EXPECT_EQ(Table.lookup({2.0f}), nullptr);
}

TEST(MemoTable, MultiComponentKeys) {
  MemoTable Table(4);
  Table.insert({1.0f, 2.0f}, Value::makeFloat(1.0f));
  EXPECT_NE(Table.lookup({1.0f, 2.0f}), nullptr);
  EXPECT_EQ(Table.lookup({2.0f, 1.0f}), nullptr);
  EXPECT_EQ(Table.lookup({1.0f}), nullptr);
}

TEST(MemoTable, BoundedEviction) {
  MemoTable Table(2);
  Table.insert({1.0f}, Value::makeFloat(1.0f));
  Table.insert({2.0f}, Value::makeFloat(2.0f));
  Table.insert({3.0f}, Value::makeFloat(3.0f)); // evicts the oldest
  EXPECT_EQ(Table.size(), 2u);
  EXPECT_EQ(Table.lookup({1.0f}), nullptr);
  EXPECT_NE(Table.lookup({2.0f}), nullptr);
  EXPECT_NE(Table.lookup({3.0f}), nullptr);
}

TEST(MemoizedFragment, MissThenHit) {
  Fixture F;
  MemoizedFragment Memo(F.Code, {1}); // v is the varying argument
  MemoTable Table(4);
  VM Machine;

  std::vector<Value> Args = {Value::makeFloat(3.0f), Value::makeFloat(2.0f)};
  bool Hit = true;
  auto First = Memo.run(Machine, Args, Table, &Hit);
  ASSERT_TRUE(First.ok());
  EXPECT_FALSE(Hit);
  auto Second = Memo.run(Machine, Args, Table, &Hit);
  EXPECT_TRUE(Hit);
  EXPECT_TRUE(First.Result.equals(Second.Result));
  EXPECT_EQ(Memo.hits(), 1u);
  EXPECT_EQ(Memo.misses(), 1u);
}

TEST(MemoizedFragment, HitSkipsExecution) {
  Fixture F;
  MemoizedFragment Memo(F.Code, {1});
  MemoTable Table(4);
  VM Machine;
  std::vector<Value> Args = {Value::makeFloat(3.0f), Value::makeFloat(2.0f)};
  Memo.run(Machine, Args, Table);
  auto Hit = Memo.run(Machine, Args, Table);
  EXPECT_EQ(Hit.InstructionsExecuted, 0u); // pure table probe
}

TEST(MemoizedFragment, DistinctVaryingValuesMiss) {
  Fixture F;
  MemoizedFragment Memo(F.Code, {1});
  MemoTable Table(8);
  VM Machine;
  for (float V : {1.0f, 2.0f, 3.0f, 4.0f}) {
    std::vector<Value> Args = {Value::makeFloat(3.0f), Value::makeFloat(V)};
    bool Hit = true;
    auto R = Memo.run(Machine, Args, Table, &Hit);
    ASSERT_TRUE(R.ok());
    EXPECT_FALSE(Hit) << V;
  }
  EXPECT_EQ(Memo.misses(), 4u);
}

TEST(MemoizedFragment, MatchesDirectExecution) {
  Fixture F;
  MemoizedFragment Memo(F.Code, {1});
  MemoTable Table(8);
  VM Machine;
  for (float V : {0.5f, -1.0f, 0.5f, 7.0f, -1.0f}) {
    std::vector<Value> Args = {Value::makeFloat(2.5f), Value::makeFloat(V)};
    auto Memoized = Memo.run(Machine, Args, Table);
    auto Direct = Machine.run(F.Code, Args);
    ASSERT_TRUE(Memoized.ok());
    EXPECT_TRUE(Memoized.Result.equals(Direct.Result)) << V;
  }
}

TEST(MemoizedFragment, SeparateTablesPerInstance) {
  // Two "pixels" with different fixed inputs must not share results even
  // for identical varying values.
  Fixture F;
  MemoizedFragment Memo(F.Code, {1});
  MemoTable PixelA(4), PixelB(4);
  VM Machine;
  std::vector<Value> ArgsA = {Value::makeFloat(2.0f), Value::makeFloat(1.0f)};
  std::vector<Value> ArgsB = {Value::makeFloat(5.0f), Value::makeFloat(1.0f)};
  auto RA = Memo.run(Machine, ArgsA, PixelA);
  auto RB = Memo.run(Machine, ArgsB, PixelB);
  EXPECT_FALSE(RA.Result.equals(RB.Result));
  // Re-running each against its own table hits and stays correct.
  auto RA2 = Memo.run(Machine, ArgsA, PixelA);
  EXPECT_TRUE(RA.Result.equals(RA2.Result));
}

TEST(MemoizedFragment, VectorKeyedMemoization) {
  auto Unit = parseUnit("float g(vec3 p, float s) { return noise(p) * s; }");
  Chunk Code = *compileFunction(*Unit, "g");
  MemoizedFragment Memo(Code, {0}); // key on the vec3
  MemoTable Table(4);
  VM Machine;
  std::vector<Value> Args = {Value::makeVec3(1, 2, 3),
                             Value::makeFloat(2.0f)};
  bool Hit = true;
  Memo.run(Machine, Args, Table, &Hit);
  EXPECT_FALSE(Hit);
  Memo.run(Machine, Args, Table, &Hit);
  EXPECT_TRUE(Hit);
  Args[0] = Value::makeVec3(1, 2, 3.5f);
  Memo.run(Machine, Args, Table, &Hit);
  EXPECT_FALSE(Hit);
}

} // namespace
