//===- tests/TestMultiSpecialize.cpp - Reuse and determinism ------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's usage model creates *many* specializations per fragment
/// (one loader/reader pair per input partition, ~10 per shader) from one
/// compilation unit. These tests cover that reuse: repeated
/// specialization of the same unit (node-id tables grow between runs),
/// multiple fragments per unit, and bit-for-bit determinism of the
/// generated programs.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "lang/ASTPrinter.h"
#include "shading/ShaderLab.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

const char *TwoFragmentSource = R"(
float first(float a, float b, float v) {
  return pow(a, b) * v;
}
float second(float a, float v) {
  float t = sqrt(a) + 1.0;
  if (t > 2.0) {
    t = t * 0.5;
  }
  return t - v;
}
)";

TEST(MultiSpecialize, SequentialPartitionsOfOneFragment) {
  auto Unit = parseUnit(TwoFragmentSource);
  ASSERT_TRUE(Unit->ok());
  // Specialize the same fragment three times with different partitions;
  // every later run must see consistent (grown) node-id tables.
  auto SpecV = specializeAndCompile(*Unit, "first", {"v"});
  auto SpecB = specializeAndCompile(*Unit, "first", {"b", "v"});
  auto SpecNone = specializeAndCompile(*Unit, "first", {});
  ASSERT_TRUE(SpecV.has_value());
  ASSERT_TRUE(SpecB.has_value());
  ASSERT_TRUE(SpecNone.has_value());
  EXPECT_EQ(SpecV->Spec.Layout.slotCount(), 1u);   // pow(a, b)
  EXPECT_EQ(SpecB->Spec.Layout.slotCount(), 0u);   // a alone is trivial
  EXPECT_EQ(SpecNone->Spec.Layout.slotCount(), 1u); // whole result

  VM Machine;
  std::vector<Value> Args = {Value::makeFloat(2.0f), Value::makeFloat(3.0f),
                             Value::makeFloat(1.5f)};
  auto Orig = Machine.run(SpecV->OriginalChunk, Args);
  for (auto *Spec : {&*SpecV, &*SpecB, &*SpecNone}) {
    Cache Slots;
    Machine.run(Spec->LoaderChunk, Args, &Slots);
    auto Read = Machine.run(Spec->ReaderChunk, Args, &Slots);
    ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
    EXPECT_TRUE(Read.Result.equals(Orig.Result));
  }
}

TEST(MultiSpecialize, MultipleFragmentsPerUnit) {
  auto Unit = parseUnit(TwoFragmentSource);
  auto SpecFirst = specializeAndCompile(*Unit, "first", {"v"});
  auto SpecSecond = specializeAndCompile(*Unit, "second", {"v"});
  ASSERT_TRUE(SpecFirst.has_value());
  ASSERT_TRUE(SpecSecond.has_value());
  EXPECT_EQ(SpecFirst->Spec.Loader->name(), "first_load");
  EXPECT_EQ(SpecSecond->Spec.Reader->name(), "second_read");

  VM Machine;
  Cache Slots;
  std::vector<Value> Args = {Value::makeFloat(9.0f), Value::makeFloat(0.5f)};
  Machine.run(SpecSecond->LoaderChunk, Args, &Slots);
  auto Read = Machine.run(SpecSecond->ReaderChunk, Args, &Slots);
  auto Orig = Machine.run(SpecSecond->OriginalChunk, Args);
  ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
  EXPECT_TRUE(Read.Result.equals(Orig.Result));
}

TEST(MultiSpecialize, GeneratedSourcesAreDeterministic) {
  // Two independent end-to-end runs over the same input produce
  // bit-identical loaders, readers, and layouts.
  for (const char *Vary : {"v", "b"}) {
    auto UnitA = parseUnit(TwoFragmentSource);
    auto UnitB = parseUnit(TwoFragmentSource);
    auto SpecA = specializeAndCompile(*UnitA, "first", {Vary});
    auto SpecB = specializeAndCompile(*UnitB, "first", {Vary});
    ASSERT_TRUE(SpecA.has_value());
    ASSERT_TRUE(SpecB.has_value());
    EXPECT_EQ(SpecA->loaderSource(), SpecB->loaderSource());
    EXPECT_EQ(SpecA->readerSource(), SpecB->readerSource());
    EXPECT_EQ(SpecA->Spec.Layout.slotCount(), SpecB->Spec.Layout.slotCount());
    EXPECT_EQ(SpecA->Spec.Layout.totalBytes(), SpecB->Spec.Layout.totalBytes());
  }
}

TEST(MultiSpecialize, GalleryShaderDeterminism) {
  ShaderLab LabA(2, 2), LabB(2, 2);
  const ShaderInfo *Info = findShader("rings");
  for (size_t C : {size_t(3), size_t(8)}) { // ringscale, lightx
    auto A = LabA.specializePartition(*Info, C);
    auto B = LabB.specializePartition(*Info, C);
    ASSERT_TRUE(A.has_value());
    ASSERT_TRUE(B.has_value());
    EXPECT_EQ(A->compiled().loaderSource(), B->compiled().loaderSource());
    EXPECT_EQ(A->compiled().readerSource(), B->compiled().readerSource());
  }
}

TEST(MultiSpecialize, ExplanationsAvailableForAllGalleryPartitions) {
  ShaderLab Lab(2, 2);
  SpecializerOptions Options;
  Options.CollectExplanation = true;
  for (const ShaderInfo &Info : shaderGallery()) {
    auto Spec = Lab.specializePartition(Info, 0, Options);
    ASSERT_TRUE(Spec.has_value()) << Lab.lastError();
    const std::string &Report = Spec->compiled().Spec.Explanation;
    EXPECT_NE(Report.find("specialization report: " + Info.Name),
              std::string::npos)
        << Info.Name;
    EXPECT_NE(Report.find("statement labels:"), std::string::npos);
  }
}

TEST(MultiSpecialize, CallerFragmentUntouched) {
  // The specializer must never mutate the caller's AST: the original
  // source prints identically before and after specialization.
  auto Unit = parseUnit(TwoFragmentSource);
  Function *F = Unit->Prog->findFunction("second");
  std::string Before = printFunction(F);
  auto Spec = specializeAndCompile(*Unit, "second", {"v"});
  ASSERT_TRUE(Spec.has_value());
  EXPECT_EQ(printFunction(F), Before);
}

} // namespace
