//===- tests/TestEquivalenceProperties.cpp - Randomized properties ------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based tests over a family of fragments and option
/// configurations: for any fragment, any input partition, and any
/// specializer options, (1) the loader computes the original's result
/// while filling the cache, and (2) the reader computes the original's
/// result for arbitrary varying inputs given a cache loaded with the same
/// fixed inputs. Inputs are driven by a deterministic LCG so failures
/// reproduce.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

/// Deterministic pseudo-random floats in [-4, 4].
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  float next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    uint32_t Bits = static_cast<uint32_t>(State >> 33);
    return (static_cast<float>(Bits % 8000) / 1000.0f) - 4.0f;
  }
};

/// One fragment of the test family: all parameters are floats.
struct FragmentCase {
  const char *Name;
  const char *Source;
  unsigned NumParams;
};

const FragmentCase Fragments[] = {
    {"straightline", R"(
float straightline(float a, float b, float c, float d) {
  float x = sin(a) * cos(b) + pow(abs(a) + 1.0, 0.5);
  float y = x * c - sqrt(abs(b) + 1.0);
  return y + x * d;
})",
     4},
    {"branchy", R"(
float branchy(float a, float b, float c, float d) {
  float r = 0.0;
  if (a > b) {
    r = pow(abs(a), 1.5) + c;
  } else {
    if (c > 0.0) { r = a * b; } else { r = a - b + d; }
  }
  if (r > 2.0) { r = r * 0.5; }
  return r + exp(0.1 * b);
})",
     4},
    {"loopy", R"(
float loopy(float a, float b, float c, float d) {
  float sum = 0.0;
  for (int i = 0; i < 5; i = i + 1) {
    sum = sum + noise(vec3(a, b, toFloat(i)));
  }
  float post = sum * sum + sqrt(abs(a * b) + 1.0);
  return post * c + d;
})",
     4},
    {"vectorish", R"(
float vectorish(float a, float b, float c, float d) {
  vec3 p = normalize(vec3(a, b, a + b + 0.125));
  vec3 q = cross(p, vec3(0.0, 1.0, 0.0));
  float m = dot(p, q) + length(q) * c;
  return mix(m, d, clamp(c * 0.1, 0.0, 1.0));
})",
     4},
    {"earlyreturn", R"(
float earlyreturn(float a, float b, float c, float d) {
  if (a > b) {
    return sin(a) * c;
  }
  if (c > 2.0) {
    return 1.0;
  }
  float tail = pow(abs(a) + 1.0, 0.75) + noise(vec3(a, b, 0.5));
  return tail * d;
})",
     4},
    {"mixedint", R"(
float mixedint(float a, float b, float c, float d) {
  int k = toInt(clamp(a, 0.0, 6.0));
  float acc = 0.0;
  while (k > 0) {
    acc = acc + b * toFloat(k % 3);
    k = k - 1;
  }
  return acc + c * d;
})",
     4},
};

struct PropertyCase {
  FragmentCase Fragment;
  unsigned PartitionMask; // bit i set => param i varies
  bool Reassociate;
  bool Speculate;
};

std::vector<PropertyCase> allCases() {
  std::vector<PropertyCase> Out;
  for (const FragmentCase &F : Fragments) {
    for (unsigned Mask = 0; Mask < (1u << F.NumParams); Mask += 3) {
      // Masks 0, 3, 6, 9, 12, 15: a spread of partition shapes including
      // empty (0) and everything-varies (15).
      Out.push_back({F, Mask, (Mask % 2) == 0, (Mask % 4) == 0});
    }
  }
  return Out;
}

class SpecializationProperty : public ::testing::TestWithParam<PropertyCase> {
};

TEST_P(SpecializationProperty, LoaderAndReaderMatchOriginal) {
  const PropertyCase &Case = GetParam();
  auto Unit = parseUnit(Case.Fragment.Source);
  ASSERT_TRUE(Unit->ok()) << Unit->Diags.str();

  const char *ParamNames[] = {"a", "b", "c", "d"};
  std::vector<std::string> Varying;
  for (unsigned I = 0; I < Case.Fragment.NumParams; ++I)
    if (Case.PartitionMask & (1u << I))
      Varying.push_back(ParamNames[I]);

  SpecializerOptions Options;
  Options.EnableReassociate = Case.Reassociate;
  Options.AllowSpeculation = Case.Speculate;
  // Float reassociation changes rounding; keep chains int-only so results
  // stay bit-identical under every configuration.
  Options.Reassoc.AllowFloatReassociation = false;

  auto Spec = specializeAndCompile(*Unit, Case.Fragment.Name, Varying,
                                   Options);
  ASSERT_TRUE(Spec.has_value()) << Unit->Diags.str();

  VM Machine;
  Lcg Random(0xD5 * 1024 + Case.PartitionMask * 8 +
             (&Case.Fragment - Fragments));

  for (unsigned Trial = 0; Trial < 6; ++Trial) {
    // Fresh fixed inputs for each trial.
    std::vector<Value> Fixed(Case.Fragment.NumParams);
    for (auto &V : Fixed)
      V = Value::makeFloat(Random.next());

    Cache Slots;
    auto Load = Machine.run(Spec->LoaderChunk, Fixed, &Slots);
    auto OrigAtLoad = Machine.run(Spec->OriginalChunk, Fixed);
    ASSERT_TRUE(Load.ok()) << Load.TrapMessage;
    ASSERT_TRUE(OrigAtLoad.ok()) << OrigAtLoad.TrapMessage;
    EXPECT_TRUE(Load.Result.equals(OrigAtLoad.Result))
        << "loader diverged (trial " << Trial << ")";

    // Sweep the varying inputs with the cache held fixed.
    for (unsigned Sweep = 0; Sweep < 4; ++Sweep) {
      std::vector<Value> Args = Fixed;
      for (unsigned I = 0; I < Case.Fragment.NumParams; ++I)
        if (Case.PartitionMask & (1u << I))
          Args[I] = Value::makeFloat(Random.next());
      auto Read = Machine.run(Spec->ReaderChunk, Args, &Slots);
      auto Orig = Machine.run(Spec->OriginalChunk, Args);
      ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
      ASSERT_TRUE(Orig.ok()) << Orig.TrapMessage;
      EXPECT_TRUE(Read.Result.equals(Orig.Result))
          << Case.Fragment.Name << " mask=" << Case.PartitionMask
          << " trial=" << Trial << " sweep=" << Sweep << ": "
          << Read.Result.str() << " vs " << Orig.Result.str();
    }
  }
}

std::string caseName(const ::testing::TestParamInfo<PropertyCase> &Info) {
  std::string Name = Info.param.Fragment.Name;
  Name += "_mask" + std::to_string(Info.param.PartitionMask);
  if (Info.param.Reassociate)
    Name += "_reassoc";
  if (Info.param.Speculate)
    Name += "_spec";
  return Name;
}

INSTANTIATE_TEST_SUITE_P(Family, SpecializationProperty,
                         ::testing::ValuesIn(allCases()), caseName);

} // namespace
