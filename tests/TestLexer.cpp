//===- tests/TestLexer.cpp - Lexer tests -------------------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

std::vector<Token> lex(std::string_view Source, DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  return L.lexAll();
}

std::vector<TokenKind> kinds(std::string_view Source) {
  DiagnosticEngine Diags;
  std::vector<TokenKind> Out;
  for (const Token &T : lex(Source, Diags))
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, EmptyInput) {
  DiagnosticEngine Diags;
  auto Tokens = lex("", Diags);
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::TK_EOF));
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Lexer, Identifiers) {
  DiagnosticEngine Diags;
  auto Tokens = lex("foo _bar x1 veryLongName_42", Diags);
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "x1");
  EXPECT_EQ(Tokens[3].Text, "veryLongName_42");
}

TEST(Lexer, Keywords) {
  auto K = kinds("void bool int float vec2 vec3 vec4 if else while for "
                 "return true false");
  std::vector<TokenKind> Expected = {
      TokenKind::TK_KwVoid,  TokenKind::TK_KwBool,   TokenKind::TK_KwInt,
      TokenKind::TK_KwFloat, TokenKind::TK_KwVec2,   TokenKind::TK_KwVec3,
      TokenKind::TK_KwVec4,  TokenKind::TK_KwIf,     TokenKind::TK_KwElse,
      TokenKind::TK_KwWhile, TokenKind::TK_KwFor,    TokenKind::TK_KwReturn,
      TokenKind::TK_KwTrue,  TokenKind::TK_KwFalse,  TokenKind::TK_EOF};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, IntLiterals) {
  DiagnosticEngine Diags;
  auto Tokens = lex("0 42 2147483647", Diags);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 2147483647);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Lexer, IntOverflowDiagnosed) {
  DiagnosticEngine Diags;
  auto Tokens = lex("99999999999", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Tokens[0].IntValue, INT32_MAX);
}

TEST(Lexer, FloatLiterals) {
  DiagnosticEngine Diags;
  auto Tokens = lex("1.5 0.25 3f 2.0f 1e3 2.5e-2 7E+2", Diags);
  EXPECT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Tokens.size(), 8u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::TK_FloatLiteral));
  EXPECT_FLOAT_EQ(Tokens[0].FloatValue, 1.5f);
  EXPECT_FLOAT_EQ(Tokens[1].FloatValue, 0.25f);
  EXPECT_TRUE(Tokens[2].is(TokenKind::TK_FloatLiteral)); // 'f' suffix
  EXPECT_FLOAT_EQ(Tokens[2].FloatValue, 3.0f);
  EXPECT_FLOAT_EQ(Tokens[3].FloatValue, 2.0f);
  EXPECT_FLOAT_EQ(Tokens[4].FloatValue, 1000.0f);
  EXPECT_FLOAT_EQ(Tokens[5].FloatValue, 0.025f);
  EXPECT_FLOAT_EQ(Tokens[6].FloatValue, 700.0f);
}

TEST(Lexer, DotAfterIntIsMemberNotFloat) {
  // "v.x" style accesses must not swallow the dot of "3.x" as a float.
  auto K = kinds("3 . x");
  std::vector<TokenKind> Expected = {TokenKind::TK_IntLiteral,
                                     TokenKind::TK_Dot,
                                     TokenKind::TK_Identifier,
                                     TokenKind::TK_EOF};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, Operators) {
  auto K = kinds("+ - * / % = += -= *= /= == != < <= > >= && || ! ? :");
  std::vector<TokenKind> Expected = {
      TokenKind::TK_Plus,       TokenKind::TK_Minus,
      TokenKind::TK_Star,       TokenKind::TK_Slash,
      TokenKind::TK_Percent,    TokenKind::TK_Assign,
      TokenKind::TK_PlusAssign, TokenKind::TK_MinusAssign,
      TokenKind::TK_StarAssign, TokenKind::TK_SlashAssign,
      TokenKind::TK_EqEq,       TokenKind::TK_NotEq,
      TokenKind::TK_Less,       TokenKind::TK_LessEq,
      TokenKind::TK_Greater,    TokenKind::TK_GreaterEq,
      TokenKind::TK_AmpAmp,     TokenKind::TK_PipePipe,
      TokenKind::TK_Bang,       TokenKind::TK_Question,
      TokenKind::TK_Colon,      TokenKind::TK_EOF};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, Comments) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a // line comment\nb /* block\ncomment */ c", Diags);
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[2].Text, "c");
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Lexer, UnterminatedBlockComment) {
  DiagnosticEngine Diags;
  lex("a /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, TracksLineAndColumn) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a\n  b\n    c", Diags);
  EXPECT_EQ(Tokens[0].Loc, SourceLoc(1, 1));
  EXPECT_EQ(Tokens[1].Loc, SourceLoc(2, 3));
  EXPECT_EQ(Tokens[2].Loc, SourceLoc(3, 5));
}

TEST(Lexer, UnknownCharacterRecovers) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a @ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  ASSERT_EQ(Tokens.size(), 4u); // a, error, b, EOF
  EXPECT_TRUE(Tokens[1].is(TokenKind::TK_Error));
  EXPECT_EQ(Tokens[2].Text, "b");
}

TEST(Lexer, SingleAmpOrPipeIsError) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a & b | c", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 2u);
  EXPECT_EQ(Tokens.size(), 6u); // a err b err c EOF
}

TEST(Lexer, TokenKindNamesAreStable) {
  EXPECT_STREQ(tokenKindName(TokenKind::TK_EOF), "end of input");
  EXPECT_STREQ(tokenKindName(TokenKind::TK_KwWhile), "'while'");
  EXPECT_STREQ(tokenKindName(TokenKind::TK_PlusAssign), "'+='");
}

} // namespace
