//===- tests/TestParser.cpp - Parser tests -----------------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/ASTPrinter.h"
#include "lang/ASTWalk.h"
#include "lang/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

struct Parsed {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  Program *Prog = nullptr;
};

std::unique_ptr<Parsed> parse(std::string_view Source) {
  auto Out = std::make_unique<Parsed>();
  Parser P(Source, Out->Ctx, Out->Diags);
  Out->Prog = P.parseProgram();
  return Out;
}

Expr *parseExpr(Parsed &Storage, std::string_view Source) {
  Parser P(Source, Storage.Ctx, Storage.Diags);
  return P.parseExpression();
}

TEST(Parser, EmptyProgram) {
  auto R = parse("");
  EXPECT_FALSE(R->Diags.hasErrors());
  EXPECT_TRUE(R->Prog->functions().empty());
}

TEST(Parser, FunctionSignature) {
  auto R = parse("float f(int a, vec3 b) { return 1.0; }");
  ASSERT_FALSE(R->Diags.hasErrors()) << R->Diags.str();
  Function *F = R->Prog->findFunction("f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->returnType(), Type::floatTy());
  ASSERT_EQ(F->params().size(), 2u);
  EXPECT_EQ(F->params()[0]->name(), "a");
  EXPECT_EQ(F->params()[0]->type(), Type::intTy());
  EXPECT_EQ(F->params()[1]->type(), Type::vec3Ty());
  EXPECT_TRUE(F->params()[0]->isParam());
}

TEST(Parser, MultipleFunctions) {
  auto R = parse("int a() { return 1; } int b() { return 2; }");
  EXPECT_FALSE(R->Diags.hasErrors());
  EXPECT_EQ(R->Prog->functions().size(), 2u);
  EXPECT_NE(R->Prog->findFunction("b"), nullptr);
  EXPECT_EQ(R->Prog->findFunction("c"), nullptr);
}

TEST(Parser, PrecedenceMulOverAdd) {
  Parsed Storage;
  Expr *E = parseExpr(Storage, "1 + 2 * 3");
  auto *Add = dyn_cast<BinaryExpr>(E);
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->op(), BinaryOp::BO_Add);
  auto *Mul = dyn_cast<BinaryExpr>(Add->rhs());
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->op(), BinaryOp::BO_Mul);
}

TEST(Parser, LeftAssociativity) {
  Parsed Storage;
  Expr *E = parseExpr(Storage, "1 - 2 - 3");
  auto *Outer = dyn_cast<BinaryExpr>(E);
  ASSERT_NE(Outer, nullptr);
  // (1 - 2) - 3
  auto *Inner = dyn_cast<BinaryExpr>(Outer->lhs());
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(cast<IntLiteralExpr>(Outer->rhs())->value(), 3);
}

TEST(Parser, ComparisonAndLogicalPrecedence) {
  Parsed Storage;
  // Parses as (a < b) && (c == d) || (e)
  Expr *E = parseExpr(Storage, "a < b && c == d || e");
  auto *Or = dyn_cast<BinaryExpr>(E);
  ASSERT_NE(Or, nullptr);
  EXPECT_EQ(Or->op(), BinaryOp::BO_Or);
  auto *And = dyn_cast<BinaryExpr>(Or->lhs());
  ASSERT_NE(And, nullptr);
  EXPECT_EQ(And->op(), BinaryOp::BO_And);
}

TEST(Parser, UnaryChains) {
  Parsed Storage;
  Expr *E = parseExpr(Storage, "--x");
  auto *Outer = dyn_cast<UnaryExpr>(E);
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->op(), UnaryOp::UO_Neg);
  EXPECT_TRUE(isa<UnaryExpr>(Outer->operand()));
}

TEST(Parser, TernaryRightAssociative) {
  Parsed Storage;
  Expr *E = parseExpr(Storage, "a ? b : c ? d : e");
  auto *Outer = dyn_cast<CondExpr>(E);
  ASSERT_NE(Outer, nullptr);
  EXPECT_TRUE(isa<CondExpr>(Outer->falseExpr()));
  EXPECT_TRUE(isa<VarRefExpr>(Outer->trueExpr()));
}

TEST(Parser, CallsAndMembers) {
  Parsed Storage;
  Expr *E = parseExpr(Storage, "dot(a, b) + v.x * v.w");
  auto *Add = cast<BinaryExpr>(E);
  auto *Call = dyn_cast<CallExpr>(Add->lhs());
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->callee(), "dot");
  EXPECT_EQ(Call->args().size(), 2u);
  auto *Mul = cast<BinaryExpr>(Add->rhs());
  auto *MX = dyn_cast<MemberExpr>(Mul->lhs());
  ASSERT_NE(MX, nullptr);
  EXPECT_EQ(MX->componentIndex(), 0u);
  EXPECT_EQ(cast<MemberExpr>(Mul->rhs())->componentIndex(), 3u);
}

TEST(Parser, VectorConstructorKeyword) {
  Parsed Storage;
  Expr *E = parseExpr(Storage, "vec3(1.0, 2.0, 3.0)");
  auto *Call = dyn_cast<CallExpr>(E);
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->callee(), "vec3");
  EXPECT_EQ(Call->args().size(), 3u);
}

TEST(Parser, BadVectorComponent) {
  Parsed Storage;
  EXPECT_EQ(parseExpr(Storage, "v.q"), nullptr);
  EXPECT_TRUE(Storage.Diags.hasErrors());
}

TEST(Parser, ForLoopDesugarsToWhile) {
  auto R = parse(R"(
int f(int n) {
  int total = 0;
  for (int i = 0; i < n; i = i + 1) {
    total = total + i;
  }
  return total;
}
)");
  ASSERT_FALSE(R->Diags.hasErrors()) << R->Diags.str();
  // No ForStmt kind exists; the loop must appear as a While inside a
  // Block with the init preceding it.
  bool FoundWhile = false;
  walkStmts(R->Prog->findFunction("f")->body(), [&](Stmt *S) {
    if (isa<WhileStmt>(S))
      FoundWhile = true;
  });
  EXPECT_TRUE(FoundWhile);
  std::string Printed = printFunction(R->Prog->findFunction("f"));
  EXPECT_NE(Printed.find("while (i < n)"), std::string::npos) << Printed;
}

TEST(Parser, ForWithoutCondition) {
  auto R = parse("int f() { for (;;) { return 1; } }");
  ASSERT_FALSE(R->Diags.hasErrors()) << R->Diags.str();
  std::string Printed = printFunction(R->Prog->findFunction("f"));
  EXPECT_NE(Printed.find("while (true)"), std::string::npos) << Printed;
}

TEST(Parser, CompoundAssignDesugars) {
  auto R = parse("int f(int x) { x += 2; x *= 3; return x; }");
  ASSERT_FALSE(R->Diags.hasErrors());
  std::string Printed = printFunction(R->Prog->findFunction("f"));
  EXPECT_NE(Printed.find("x = x + 2"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("x = x * 3"), std::string::npos) << Printed;
}

TEST(Parser, DeclWithoutInitializer) {
  auto R = parse("int f() { float x; return 1; }");
  ASSERT_FALSE(R->Diags.hasErrors());
  bool Found = false;
  walkStmts(R->Prog->findFunction("f")->body(), [&](Stmt *S) {
    if (auto *Decl = dyn_cast<DeclStmt>(S)) {
      EXPECT_EQ(Decl->init(), nullptr);
      Found = true;
    }
  });
  EXPECT_TRUE(Found);
}

TEST(Parser, IfElseChains) {
  auto R = parse(R"(
int f(int x) {
  if (x > 2) { return 2; }
  else if (x > 1) { return 1; }
  else { return 0; }
}
)");
  ASSERT_FALSE(R->Diags.hasErrors());
  unsigned Ifs = 0;
  walkStmts(R->Prog->findFunction("f")->body(), [&](Stmt *S) {
    if (isa<IfStmt>(S))
      ++Ifs;
  });
  EXPECT_EQ(Ifs, 2u);
}

TEST(Parser, ErrorsAreReportedWithRecovery) {
  auto R = parse(R"(
int f() {
  int x = ;
  return 1;
}
int g() { return 2; }
)");
  EXPECT_TRUE(R->Diags.hasErrors());
  // Recovery keeps parsing: g still exists.
  EXPECT_NE(R->Prog->findFunction("g"), nullptr);
}

TEST(Parser, MissingSemicolonDiagnosed) {
  auto R = parse("int f() { return 1 }");
  EXPECT_TRUE(R->Diags.hasErrors());
  EXPECT_NE(R->Diags.str().find("';'"), std::string::npos);
}

TEST(Parser, VoidParameterRejected) {
  auto R = parse("int f(void x) { return 1; }");
  EXPECT_TRUE(R->Diags.hasErrors());
}

TEST(Parser, NodeIdsAreUniqueAndDense) {
  auto R = parse("int f(int a) { int b = a + 1; return b * 2; }");
  ASSERT_FALSE(R->Diags.hasErrors());
  std::vector<bool> Seen(R->Ctx.numNodeIds(), false);
  walkStmts(R->Prog->findFunction("f")->body(), [&](Stmt *S) {
    ASSERT_LT(S->nodeId(), Seen.size());
    EXPECT_FALSE(Seen[S->nodeId()]);
    Seen[S->nodeId()] = true;
    forEachExprOfStmt(S, [&](Expr *Root) {
      walkExpr(Root, [&](Expr *E) {
        ASSERT_LT(E->nodeId(), Seen.size());
        EXPECT_FALSE(Seen[E->nodeId()]);
        Seen[E->nodeId()] = true;
      });
    });
  });
}

} // namespace
