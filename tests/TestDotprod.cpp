//===- tests/TestDotprod.cpp - Paper Section 2 walk-through ----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests on the paper's Section 2 example (Figures 1 and 2):
/// the dot-product fragment specialized with {z1, z2} varying. Checks the
/// structure of the loader/reader, the cache contents, and behavioral
/// equivalence.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace dspec;

namespace {

const char *DotprodSource = R"(
float dotprod(float x1, float y1, float z1,
              float x2, float y2, float z2, float scale) {
  if (scale != 0.0) {
    return (x1*x2 + y1*y2 + z1*z2) / scale;
  } else {
    return -1.0;
  }
}
)";

class DotprodTest : public ::testing::Test {
protected:
  void SetUp() override {
    Unit = parseUnit(DotprodSource);
    ASSERT_TRUE(Unit->ok()) << Unit->Diags.str();
    SpecializerOptions Options;
    // The paper's +-chain leans left, so reassociation is needed to group
    // x1*x2 + y1*y2 as in Figure 2.
    Options.EnableReassociate = true;
    Compiled = specializeAndCompile(*Unit, "dotprod", {"z1", "z2"}, Options);
    ASSERT_TRUE(Compiled.has_value()) << Unit->Diags.str();
  }

  std::vector<Value> makeArgs(float X1, float Y1, float Z1, float X2,
                              float Y2, float Z2, float Scale) {
    return {Value::makeFloat(X1), Value::makeFloat(Y1), Value::makeFloat(Z1),
            Value::makeFloat(X2), Value::makeFloat(Y2), Value::makeFloat(Z2),
            Value::makeFloat(Scale)};
  }

  std::unique_ptr<CompilationUnit> Unit;
  std::optional<CompiledSpecialization> Compiled;
};

TEST_F(DotprodTest, CachesExactlyOneFloat) {
  // Figure 2: the cache holds only the value of x1*x2 + y1*y2.
  EXPECT_EQ(Compiled->Spec.Layout.slotCount(), 1u);
  EXPECT_EQ(Compiled->Spec.Layout.totalBytes(), 4u);
}

TEST_F(DotprodTest, ConditionalSurvivesInReader) {
  // The specializer has no access to scale's value, so the reader still
  // tests it (the paper highlights exactly this).
  std::string Reader = Compiled->readerSource();
  EXPECT_NE(Reader.find("scale != 0"), std::string::npos) << Reader;
  EXPECT_NE(Reader.find("cache->slot0"), std::string::npos) << Reader;
  // The reader must not recompute the invariant products.
  EXPECT_EQ(Reader.find("x1 * x2"), std::string::npos) << Reader;
  EXPECT_EQ(Reader.find("y1 * y2"), std::string::npos) << Reader;
  // But the dependent product remains.
  EXPECT_NE(Reader.find("z1 * z2"), std::string::npos) << Reader;
}

TEST_F(DotprodTest, LoaderStoresTheInvariantSum) {
  std::string Loader = Compiled->loaderSource();
  EXPECT_NE(Loader.find("cache->slot0 = "), std::string::npos) << Loader;
  EXPECT_NE(Loader.find("z1 * z2"), std::string::npos) << Loader;
}

TEST_F(DotprodTest, LoaderMatchesOriginalAndFillsCache) {
  VM Machine;
  auto Args = makeArgs(1, 2, 3, 4, 5, 6, 2);

  auto Orig = Machine.run(Compiled->OriginalChunk, Args);
  ASSERT_TRUE(Orig.ok()) << Orig.TrapMessage;

  Cache Slots;
  auto Load = Machine.run(Compiled->LoaderChunk, Args, &Slots);
  ASSERT_TRUE(Load.ok()) << Load.TrapMessage;
  EXPECT_TRUE(Orig.Result.equals(Load.Result))
      << Orig.Result.str() << " vs " << Load.Result.str();
  ASSERT_EQ(Slots.size(), 1u);
  EXPECT_FLOAT_EQ(Slots[0].asFloat(), 1 * 4 + 2 * 5); // x1*x2 + y1*y2
}

TEST_F(DotprodTest, ReaderMatchesOriginalAcrossVaryingInputs) {
  VM Machine;
  Cache Slots;
  auto Fixed = makeArgs(1.5f, -2.25f, 0, 4.75f, 0.5f, 0, 3.0f);
  auto Load = Machine.run(Compiled->LoaderChunk, Fixed, &Slots);
  ASSERT_TRUE(Load.ok()) << Load.TrapMessage;

  for (float Z1 : {-3.0f, 0.0f, 1.0f, 7.5f}) {
    for (float Z2 : {-1.0f, 0.25f, 9.0f}) {
      auto Args = makeArgs(1.5f, -2.25f, Z1, 4.75f, 0.5f, Z2, 3.0f);
      auto Orig = Machine.run(Compiled->OriginalChunk, Args);
      auto Read = Machine.run(Compiled->ReaderChunk, Args, &Slots);
      ASSERT_TRUE(Orig.ok());
      ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
      EXPECT_TRUE(Orig.Result.equals(Read.Result))
          << "z1=" << Z1 << " z2=" << Z2 << ": " << Orig.Result.str()
          << " vs " << Read.Result.str();
    }
  }
}

TEST_F(DotprodTest, ReaderHandlesZeroScaleBranch) {
  VM Machine;
  Cache Slots;
  auto Args = makeArgs(1, 2, 3, 4, 5, 6, 0); // scale == 0 -> error branch
  auto Load = Machine.run(Compiled->LoaderChunk, Args, &Slots);
  ASSERT_TRUE(Load.ok()) << Load.TrapMessage;
  EXPECT_FLOAT_EQ(Load.Result.asFloat(), -1.0f);
  auto Read = Machine.run(Compiled->ReaderChunk, Args, &Slots);
  ASSERT_TRUE(Read.ok()) << Read.TrapMessage;
  EXPECT_FLOAT_EQ(Read.Result.asFloat(), -1.0f);
}

TEST_F(DotprodTest, ReaderExecutesFewerInstructions) {
  VM Machine;
  Cache Slots;
  auto Args = makeArgs(1, 2, 3, 4, 5, 6, 2);
  auto Load = Machine.run(Compiled->LoaderChunk, Args, &Slots);
  ASSERT_TRUE(Load.ok());
  auto Orig = Machine.run(Compiled->OriginalChunk, Args);
  auto Read = Machine.run(Compiled->ReaderChunk, Args, &Slots);
  EXPECT_LT(Read.InstructionsExecuted, Orig.InstructionsExecuted);
  // The loader is the instrumented original: slightly more work.
  EXPECT_GE(Load.InstructionsExecuted, Orig.InstructionsExecuted);
}

TEST_F(DotprodTest, SplitSizesWithinPaperBound) {
  // Section 3.3: loader + reader terms stay under twice the fragment plus
  // the cache-store overhead.
  const auto &Stats = Compiled->Spec.Stats;
  EXPECT_LT(Stats.LoaderTerms + Stats.ReaderTerms,
            2 * Stats.FragmentTerms + 2 * Stats.CachedExprs + 4)
      << "loader=" << Stats.LoaderTerms << " reader=" << Stats.ReaderTerms
      << " fragment=" << Stats.FragmentTerms;
}

} // namespace
