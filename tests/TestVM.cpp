//===- tests/TestVM.cpp - Bytecode compiler and VM tests ----------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "vm/Noise.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dspec;

namespace {

/// Compiles one function and runs it.
ExecResult runSource(const std::string &Source, const std::string &Name,
                     const std::vector<Value> &Args, VM *Machine = nullptr) {
  auto Unit = parseUnit(Source);
  EXPECT_TRUE(Unit->ok()) << Unit->Diags.str();
  auto Code = compileFunction(*Unit, Name);
  EXPECT_TRUE(Code.has_value());
  VM Local;
  return (Machine ? *Machine : Local).run(*Code, Args);
}

TEST(VM, IntArithmetic) {
  auto R = runSource("int f(int a, int b) { return (a + b) * 2 - b / 2 + "
                     "b % 3; }",
                     "f", {Value::makeInt(5), Value::makeInt(7)});
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.Result.asInt(), (5 + 7) * 2 - 7 / 2 + 7 % 3);
}

TEST(VM, FloatArithmeticAndPromotion) {
  auto R = runSource("float f(float a, int b) { return a * b + b / 2; }",
                     "f", {Value::makeFloat(1.5f), Value::makeInt(5)});
  ASSERT_TRUE(R.ok());
  // b / 2 is *integer* division (both operands int), then promotes.
  EXPECT_FLOAT_EQ(R.Result.asFloat(), 1.5f * 5 + 2);
}

TEST(VM, IntDivisionByZeroTraps) {
  auto R = runSource("int f(int a) { return 1 / a; }", "f",
                     {Value::makeInt(0)});
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMessage.find("division by zero"), std::string::npos);
}

TEST(VM, FloatDivisionByZeroIsInf) {
  auto R = runSource("float f(float a) { return 1.0 / a; }", "f",
                     {Value::makeFloat(0.0f)});
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(std::isinf(R.Result.asFloat()));
}

TEST(VM, ModByZeroTraps) {
  auto R = runSource("int f(int a) { return 7 % a; }", "f",
                     {Value::makeInt(0)});
  EXPECT_TRUE(R.Trapped);
}

TEST(VM, Comparisons) {
  auto R = runSource("bool f(int a, float b) { return a <= b; }", "f",
                     {Value::makeInt(2), Value::makeFloat(2.0f)});
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Result.asBool());
}

TEST(VM, StrictLogicalOperators) {
  // Both sides evaluate (dsc && is strict); semantics still boolean.
  auto R = runSource(
      "bool f(bool a, bool b) { return a && b || !a && !b; }", "f",
      {Value::makeBool(true), Value::makeBool(false)});
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(R.Result.asBool());
}

TEST(VM, TernarySelectsButEvaluatesBoth) {
  auto R = runSource("float f(bool c) { return c ? 1.0 : 2.0; }", "f",
                     {Value::makeBool(false)});
  ASSERT_TRUE(R.ok());
  EXPECT_FLOAT_EQ(R.Result.asFloat(), 2.0f);
}

TEST(VM, WhileLoopAccumulates) {
  auto R = runSource(R"(
int f(int n) {
  int total = 0;
  int i = 0;
  while (i < n) {
    total = total + i * i;
    i = i + 1;
  }
  return total;
})",
                     "f", {Value::makeInt(5)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Result.asInt(), 0 + 1 + 4 + 9 + 16);
}

TEST(VM, NestedLoops) {
  auto R = runSource(R"(
int f(int n) {
  int total = 0;
  for (int i = 0; i < n; i = i + 1) {
    for (int j = 0; j <= i; j = j + 1) {
      total = total + 1;
    }
  }
  return total;
})",
                     "f", {Value::makeInt(4)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Result.asInt(), 1 + 2 + 3 + 4);
}

TEST(VM, InstructionBudgetStopsRunaways) {
  auto Unit = parseUnit("int f() { while (true) { int x = 0; } return 0; }");
  ASSERT_TRUE(Unit->ok());
  auto Code = compileFunction(*Unit, "f");
  VM Machine;
  Machine.InstructionBudget = 10000;
  auto R = Machine.run(*Code, {});
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMessage.find("budget"), std::string::npos);
}

TEST(VM, VectorOpsAndMembers) {
  auto R = runSource(R"(
float f(vec3 a, vec3 b, float s) {
  vec3 c = (a + b) * s;
  vec3 d = c / 2.0;
  return d.x + d.y * 10.0 + d.z * 100.0;
})",
                     "f",
                     {Value::makeVec3(1, 2, 3), Value::makeVec3(4, 5, 6),
                      Value::makeFloat(2.0f)});
  ASSERT_TRUE(R.ok());
  EXPECT_FLOAT_EQ(R.Result.asFloat(), 5.0f + 70.0f + 900.0f);
}

TEST(VM, ZeroInitializedDecl) {
  auto R = runSource("float f() { float x; return x + 1.0; }", "f", {});
  ASSERT_TRUE(R.ok());
  EXPECT_FLOAT_EQ(R.Result.asFloat(), 1.0f);
}

TEST(VM, ShadowedVariablesGetDistinctSlots) {
  auto R = runSource(R"(
int f(int p) {
  int x = 1;
  if (p > 0) {
    int x = 100;
    x = x + 1;
  }
  return x;
})",
                     "f", {Value::makeInt(5)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Result.asInt(), 1);
}

TEST(VM, ParamCountMismatchTraps) {
  auto Unit = parseUnit("int f(int a) { return a; }");
  auto Code = compileFunction(*Unit, "f");
  VM Machine;
  auto R = Machine.run(*Code, {});
  EXPECT_TRUE(R.Trapped);
}

TEST(VM, IntArgPromotesToFloatParam) {
  auto Unit = parseUnit("float f(float a) { return a * 2.0; }");
  auto Code = compileFunction(*Unit, "f");
  VM Machine;
  auto R = Machine.run(*Code, {Value::makeInt(3)});
  ASSERT_TRUE(R.ok());
  EXPECT_FLOAT_EQ(R.Result.asFloat(), 6.0f);
}

TEST(VM, CacheAccessWithoutCacheTraps) {
  // A reader requires its cache: build one via the specializer, then run
  // it with no cache bound.
  auto Unit = parseUnit("float f(float a, float b) { return sqrt(a) * b; }");
  auto Spec = specializeAndCompile(*Unit, "f", {"b"});
  ASSERT_TRUE(Spec.has_value());
  VM Machine;
  auto R = Machine.run(Spec->ReaderChunk,
                       {Value::makeFloat(4.0f), Value::makeFloat(2.0f)});
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMessage.find("cache"), std::string::npos);
}

TEST(VM, TraceBuiltinRecords) {
  VM Machine;
  auto R = runSource("void f(float x) { dsc_trace(x); dsc_trace(x * 2.0); }",
                     "f", {Value::makeFloat(3.0f)}, &Machine);
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(Machine.traceLog().size(), 2u);
  EXPECT_FLOAT_EQ(Machine.traceLog()[0], 3.0f);
  EXPECT_FLOAT_EQ(Machine.traceLog()[1], 6.0f);
}

TEST(VM, ClockAdvances) {
  VM Machine;
  auto Unit = parseUnit("float f() { return dsc_clock(); }");
  auto Code = compileFunction(*Unit, "f");
  auto First = Machine.run(*Code, {});
  auto Second = Machine.run(*Code, {});
  ASSERT_TRUE(First.ok());
  ASSERT_TRUE(Second.ok());
  EXPECT_LT(First.Result.asFloat(), Second.Result.asFloat());
}

TEST(VM, InstructionCountIsReported) {
  auto R = runSource("int f() { return 1 + 2; }", "f", {});
  ASSERT_TRUE(R.ok());
  EXPECT_GT(R.InstructionsExecuted, 0u);
  EXPECT_LT(R.InstructionsExecuted, 10u);
}

TEST(VM, DisassemblyMentionsOpcodes) {
  auto Unit = parseUnit("int f(int a) { if (a > 0) { return 1; } return 0; }");
  auto Code = compileFunction(*Unit, "f");
  std::string Text = Code->disassemble();
  EXPECT_NE(Text.find("jfalse"), std::string::npos) << Text;
  EXPECT_NE(Text.find("ret"), std::string::npos);
}

TEST(Builtins, ScalarMathMatchesLibm) {
  auto R = runSource(
      "float f(float x) { return sqrt(x) + sin(x) + cos(x) + exp(x) + "
      "log(x) + pow(x, 2.5) + floor(x) + ceil(x) + fract(x) + tan(x); }",
      "f", {Value::makeFloat(1.75f)});
  ASSERT_TRUE(R.ok());
  float X = 1.75f;
  float Expected = std::sqrt(X) + std::sin(X) + std::cos(X) + std::exp(X) +
                   std::log(X) + std::pow(X, 2.5f) + std::floor(X) +
                   std::ceil(X) + (X - std::floor(X)) + std::tan(X);
  EXPECT_FLOAT_EQ(R.Result.asFloat(), Expected);
}

TEST(Builtins, MinMaxClampMixStep) {
  auto R = runSource(
      "float f(float a, float b) { return min(a, b) + max(a, b) * 10.0 + "
      "clamp(a, 0.0, 1.0) * 100.0 + mix(a, b, 0.5) * 1000.0 + "
      "step(a, b) * 10000.0 + smoothstep(0.0, 1.0, 0.5) * 100000.0; }",
      "f", {Value::makeFloat(2.0f), Value::makeFloat(3.0f)});
  ASSERT_TRUE(R.ok());
  EXPECT_FLOAT_EQ(R.Result.asFloat(),
                  2.0f + 30.0f + 100.0f + 2500.0f + 10000.0f + 50000.0f);
}

TEST(Builtins, VectorOps) {
  auto R = runSource(R"(
float f(vec3 a, vec3 b) {
  vec3 c = cross(a, b);
  float d = dot(a, b);
  float l = length(b);
  vec3 n = normalize(b);
  return c.x + d + l + length(n);
})",
                     "f",
                     {Value::makeVec3(1, 0, 0), Value::makeVec3(0, 2, 0)});
  ASSERT_TRUE(R.ok());
  // cross((1,0,0),(0,2,0)) = (0,0,2); dot = 0; |b| = 2; |n| = 1.
  EXPECT_FLOAT_EQ(R.Result.asFloat(), 0.0f + 0.0f + 2.0f + 1.0f);
}

TEST(Builtins, ReflectAndRotate) {
  auto R = runSource(R"(
float f(vec3 v, vec3 n) {
  vec3 r = reflect(v, n);
  vec3 rx = rotateZ(vec3(1.0, 0.0, 0.0), 1.5707964);
  return r.y + rx.y;
})",
                     "f",
                     {Value::makeVec3(1, -1, 0), Value::makeVec3(0, 1, 0)});
  ASSERT_TRUE(R.ok());
  // reflect((1,-1,0), (0,1,0)) = (1,1,0); rotateZ(x-axis, pi/2) = y-axis.
  EXPECT_NEAR(R.Result.asFloat(), 1.0f + 1.0f, 1e-5f);
}

TEST(Noise, DeterministicAndBounded) {
  float A = perlinNoise3(0.3f, 1.7f, -2.2f);
  float B = perlinNoise3(0.3f, 1.7f, -2.2f);
  EXPECT_EQ(A, B);
  for (float X = -3.0f; X < 3.0f; X += 0.37f) {
    float N = perlinNoise3(X, X * 0.5f, -X);
    EXPECT_GE(N, -1.2f);
    EXPECT_LE(N, 1.2f);
  }
}

TEST(Noise, LatticeZeros) {
  // Gradient noise vanishes on integer lattice points.
  EXPECT_FLOAT_EQ(perlinNoise3(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(perlinNoise3(1, 2, 3), 0.0f);
  EXPECT_FLOAT_EQ(perlinNoise3(-4, 7, 11), 0.0f);
}

TEST(Noise, NotConstant) {
  float A = perlinNoise3(0.5f, 0.5f, 0.5f);
  float B = perlinNoise3(0.9f, 0.1f, 0.4f);
  EXPECT_NE(A, B);
}

TEST(Noise, FbmAndTurbulence) {
  float Single = perlinNoise3(0.4f, 0.6f, 0.8f);
  float One = fbm3(0.4f, 0.6f, 0.8f, 1, 2.0f, 0.5f);
  EXPECT_FLOAT_EQ(Single, One);
  float Turb = turbulence3(0.4f, 0.6f, 0.8f, 6);
  EXPECT_GE(Turb, 0.0f);
  // Adding octaves adds magnitude (absolute noise sums).
  EXPECT_GE(turbulence3(0.4f, 0.6f, 0.8f, 8), Turb - 1e-6f);
}

} // namespace
