//===- examples/quickstart.cpp - The paper's Section 2 walk-through ---------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: specialize the paper's dot-product fragment (Figure 1)
/// with the z coordinates varying, print the generated cache loader and
/// cache reader (Figure 2), and run all three programs to show that the
/// staged pair reproduces the original's results while doing less work
/// per varying-input change.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "vm/VM.h"

#include <cstdio>

using namespace dspec;

int main() {
  // 1. A dsc fragment: the paper's Figure 1 (ERROR modeled as -1).
  const char *Source = R"(
float dotprod(float x1, float y1, float z1,
              float x2, float y2, float z2, float scale) {
  if (scale != 0.0) {
    return (x1*x2 + y1*y2 + z1*z2) / scale;
  } else {
    return -1.0;
  }
}
)";

  auto Unit = parseUnit(Source);
  if (!Unit->ok()) {
    std::fprintf(stderr, "parse/sema failed:\n%s", Unit->Diags.str().c_str());
    return 1;
  }

  // 2. Choose the input partition: z1 and z2 vary, everything else is
  //    fixed. Reassociation groups the invariant products (Section 4.2).
  SpecializerOptions Options;
  Options.EnableReassociate = true;
  auto Spec = specializeAndCompile(*Unit, "dotprod", {"z1", "z2"}, Options);
  if (!Spec) {
    std::fprintf(stderr, "specialization failed:\n%s",
                 Unit->Diags.str().c_str());
    return 1;
  }

  std::printf("=== cache loader (early phase) ===\n%s\n",
              Spec->loaderSource().c_str());
  std::printf("=== cache reader (late phase) ===\n%s\n",
              Spec->readerSource().c_str());
  std::printf("cache: %u slot(s), %u byte(s)\n\n",
              Spec->Spec.Layout.slotCount(), Spec->Spec.Layout.totalBytes());

  // 3. Execute. The loader runs once when the fixed inputs become known;
  //    the reader runs every time the varying inputs change. The cache is
  //    a packed byte buffer of exactly the layout's size, accessed through
  //    a CacheView — the same representation the render engine's arena
  //    uses per pixel (the boxed std::vector<Value> cache still exists,
  //    but only as a compatibility adapter).
  VM Machine;
  std::vector<unsigned char> CacheBytes(Spec->Spec.Layout.totalBytes());
  CacheView View(CacheBytes.data(),
                 static_cast<unsigned>(CacheBytes.size()));
  auto Args = [](float Z1, float Z2) {
    return std::vector<Value>{
        Value::makeFloat(1.0f), Value::makeFloat(2.0f), Value::makeFloat(Z1),
        Value::makeFloat(4.0f), Value::makeFloat(5.0f), Value::makeFloat(Z2),
        Value::makeFloat(2.0f)};
  };

  ExecResult First = Machine.run(Spec->LoaderChunk, Args(3.0f, 6.0f), View);
  const CacheSlot &Slot0 = Spec->Spec.Layout.slot(0);
  std::printf("loader(z1=3, z2=6)  = %s   (fills the cache: slot0 = %s)\n",
              First.Result.str().c_str(),
              View.load(Slot0.Offset, Slot0.SlotType.kind()).str().c_str());

  for (float Z1 : {10.0f, -1.0f, 0.5f}) {
    ExecResult FromReader =
        Machine.run(Spec->ReaderChunk, Args(Z1, 6.0f), View);
    ExecResult Reference =
        Machine.run(Spec->OriginalChunk, Args(Z1, 6.0f));
    std::printf("reader(z1=%5.1f)    = %-10s original = %-10s  (%s, "
                "%llu vs %llu VM instructions)\n",
                Z1, FromReader.Result.str().c_str(),
                Reference.Result.str().c_str(),
                FromReader.Result.equals(Reference.Result) ? "match"
                                                           : "MISMATCH",
                static_cast<unsigned long long>(
                    FromReader.InstructionsExecuted),
                static_cast<unsigned long long>(
                    Reference.InstructionsExecuted));
  }
  return 0;
}
