//===- examples/shader_playground.cpp - Per-pixel specialization ------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 5 scenario end to end: render a gallery shader,
/// specialize it on "everything fixed except one control parameter",
/// build one cache per pixel with the loader, then re-render through the
/// cache reader while sweeping the parameter — as if the user were
/// dragging a slider in the interactive renderer. Prints ASCII previews,
/// writes PPM images, and reports the measured speedup.
///
/// Usage: shader_playground [shader=marble] [param=ka] [size=64x40]
///
//===----------------------------------------------------------------------===//

#include "shading/ShaderLab.h"

#include <chrono>
#include <cstdio>
#include <cstring>

using namespace dspec;

int main(int Argc, char **Argv) {
  const char *ShaderName = Argc > 1 ? Argv[1] : "marble";
  const char *ParamName = Argc > 2 ? Argv[2] : "ka";
  unsigned Width = 64, Height = 40;
  if (Argc > 3)
    std::sscanf(Argv[3], "%ux%u", &Width, &Height);

  const ShaderInfo *Info = findShader(ShaderName);
  if (!Info) {
    std::fprintf(stderr, "unknown shader '%s'; gallery:", ShaderName);
    for (const ShaderInfo &S : shaderGallery())
      std::fprintf(stderr, " %s", S.Name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  size_t ParamIndex = Info->Controls.size();
  for (size_t I = 0; I < Info->Controls.size(); ++I)
    if (Info->Controls[I].Name == ParamName)
      ParamIndex = I;
  if (ParamIndex == Info->Controls.size()) {
    std::fprintf(stderr, "shader '%s' has no control '%s'; controls:",
                 ShaderName, ParamName);
    for (const ControlParam &P : Info->Controls)
      std::fprintf(stderr, " %s", P.Name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  ShaderLab Lab(Width, Height, 3);
  auto Spec = Lab.specializePartition(*Info, ParamIndex);
  if (!Spec) {
    std::fprintf(stderr, "%s\n", Lab.lastError().c_str());
    return 1;
  }
  std::printf("shader %u '%s', varying '%s': cache %u bytes x %u pixels\n",
              Info->Index, Info->Name.c_str(), ParamName,
              Spec->compiled().Spec.Layout.totalBytes(),
              Lab.grid().pixelCount());

  RenderEngine &Engine = Lab.engine();
  auto Controls = ShaderLab::defaultControls(*Info);

  // Early phase: one loader pass fills every pixel's cache (this also
  // renders the first frame).
  auto T0 = std::chrono::steady_clock::now();
  if (!Spec->load(Engine, Lab.grid(), Controls)) {
    std::fprintf(stderr, "loader trapped\n");
    return 1;
  }
  auto T1 = std::chrono::steady_clock::now();

  // Late phase: sweep the control parameter through the reader.
  const ControlParam &Param = Info->Controls[ParamIndex];
  double ReaderSeconds = 0.0, OriginalSeconds = 0.0;
  unsigned FrameIndex = 0;
  for (float V : Lab.sweepValues(Param, 4)) {
    Controls[ParamIndex] = V;
    Framebuffer Frame(Width, Height);
    auto R0 = std::chrono::steady_clock::now();
    if (!Spec->readFrame(Engine, Lab.grid(), Controls, &Frame)) {
      std::fprintf(stderr, "reader trapped\n");
      return 1;
    }
    auto R1 = std::chrono::steady_clock::now();
    Framebuffer Reference(Width, Height);
    if (!Spec->originalFrame(Engine, Lab.grid(), Controls, &Reference)) {
      std::fprintf(stderr, "original trapped\n");
      return 1;
    }
    auto R2 = std::chrono::steady_clock::now();
    ReaderSeconds += std::chrono::duration<double>(R1 - R0).count();
    OriginalSeconds += std::chrono::duration<double>(R2 - R1).count();

    std::printf("\n--- %s = %g (frame %u, reader) ---\n", Param.Name.c_str(),
                V, FrameIndex);
    std::printf("%s", Frame.asciiArt().c_str());
    char Path[128];
    std::snprintf(Path, sizeof(Path), "%s_%s_%u.ppm", Info->Name.c_str(),
                  Param.Name.c_str(), FrameIndex);
    if (Frame.writePPM(Path))
      std::printf("wrote %s\n", Path);
    ++FrameIndex;
  }

  double LoaderSeconds = std::chrono::duration<double>(T1 - T0).count();
  std::printf("\nloader pass: %.2f ms (once per fixed-input change)\n",
              LoaderSeconds * 1e3);
  std::printf("reader frames: %.2f ms total; original frames: %.2f ms "
              "total  =>  speedup %.2fx while dragging '%s'\n",
              ReaderSeconds * 1e3, OriginalSeconds * 1e3,
              OriginalSeconds / ReaderSeconds, Param.Name.c_str());
  return 0;
}
