//===- examples/cache_budget.cpp - Section 4.3 cache limiting ---------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates cache size limiting (Section 4.3): specialize one shader
/// partition under progressively tighter byte budgets and show how the
/// specializer trades speedup for memory by relabeling the least valuable
/// cached terms as dynamic. With millions of simultaneously live per-pixel
/// caches, total memory is the product of this per-pixel number and the
/// pixel count — exactly why the paper bounds it.
///
/// Usage: cache_budget [shader=rings] [param=lightx]
///
//===----------------------------------------------------------------------===//

#include "shading/ShaderLab.h"

#include <cstdio>
#include <cstring>

using namespace dspec;

int main(int Argc, char **Argv) {
  const char *ShaderName = Argc > 1 ? Argv[1] : "rings";
  const char *ParamName = Argc > 2 ? Argv[2] : "lightx";

  const ShaderInfo *Info = findShader(ShaderName);
  if (!Info) {
    std::fprintf(stderr, "unknown shader '%s'\n", ShaderName);
    return 1;
  }
  size_t ParamIndex = Info->Controls.size();
  for (size_t I = 0; I < Info->Controls.size(); ++I)
    if (Info->Controls[I].Name == ParamName)
      ParamIndex = I;
  if (ParamIndex == Info->Controls.size()) {
    std::fprintf(stderr, "shader '%s' has no control '%s'\n", ShaderName,
                 ParamName);
    return 1;
  }

  ShaderLab Lab(48, 32, 3);

  // Unlimited first: the natural cache size.
  auto Unlimited = Lab.measurePartition(*Info, ParamIndex);
  if (!Unlimited) {
    std::fprintf(stderr, "%s\n", Lab.lastError().c_str());
    return 1;
  }
  unsigned Natural = Unlimited->CacheBytes;
  std::printf("shader '%s', varying '%s': natural cache %u bytes, "
              "speedup %.2fx\n\n",
              ShaderName, ParamName, Natural, Unlimited->Speedup);
  std::printf("%8s %10s %10s %14s\n", "budget", "actual", "speedup",
              "% of benefit");

  for (int Budget = static_cast<int>(Natural); Budget >= 0; Budget -= 4) {
    SpecializerOptions Options;
    Options.CacheByteLimit = static_cast<unsigned>(Budget);
    auto R = Lab.measurePartition(*Info, ParamIndex, Options);
    if (!R) {
      std::fprintf(stderr, "%s\n", Lab.lastError().c_str());
      return 1;
    }
    double Benefit =
        Unlimited->Speedup > 1.0
            ? 100.0 * (R->Speedup - 1.0) / (Unlimited->Speedup - 1.0)
            : 100.0;
    std::printf("%7dB %9uB %9.2fx %13.0f%%\n", Budget, R->CacheBytes,
                R->Speedup, Benefit);
  }

  std::printf("\n(640x480 image: natural total %.1f MiB; an 8-byte budget "
              "totals %.1f MiB)\n",
              Natural * 640.0 * 480.0 / (1 << 20),
              8.0 * 640.0 * 480.0 / (1 << 20));
  return 0;
}
