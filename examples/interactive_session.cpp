//===- examples/interactive_session.cpp - A full editing session ------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates the paper's interactive shader-editing workflow across
/// *multiple* parameters: the renderer keeps one loader/reader pair per
/// control parameter (built statically when the shader is installed);
/// when the user grabs a slider, the corresponding loader fills the
/// per-pixel caches once, and every subsequent tweak of that slider runs
/// only the reader. Switching sliders switches specializations and
/// reloads. The example replays a scripted session and compares total
/// work against re-running the original shader for every tweak.
///
/// Usage: interactive_session [shader=rings]
///
//===----------------------------------------------------------------------===//

#include "shading/ShaderLab.h"

#include <chrono>
#include <cstdio>
#include <map>

using namespace dspec;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  const char *ShaderName = Argc > 1 ? Argv[1] : "rings";
  const ShaderInfo *Info = findShader(ShaderName);
  if (!Info) {
    std::fprintf(stderr, "unknown shader '%s'\n", ShaderName);
    return 1;
  }

  ShaderLab Lab(48, 32, 3);

  // "Install" the shader: build every partition's loader/reader pair up
  // front (the paper compiles these statically at install time).
  auto InstallStart = std::chrono::steady_clock::now();
  std::map<size_t, SpecializedShader> Installed;
  for (size_t C = 0; C < Info->Controls.size(); ++C) {
    auto Spec = Lab.specializePartition(*Info, C);
    if (!Spec) {
      std::fprintf(stderr, "%s\n", Lab.lastError().c_str());
      return 1;
    }
    Installed.emplace(C, std::move(*Spec));
  }
  std::printf("installed shader '%s': %zu loader/reader pairs in %.1f ms\n",
              Info->Name.c_str(), Installed.size(),
              secondsSince(InstallStart) * 1e3);

  // A scripted editing session: (parameter index, number of tweaks).
  // Dragging a slider produces several tweaks of the same parameter.
  std::vector<std::pair<size_t, unsigned>> Session = {
      {7, 6}, {3, 4}, {7, 3}, {11, 8}, {0, 5}, {3, 2},
  };

  RenderEngine &Engine = Lab.engine();
  auto Controls = ShaderLab::defaultControls(*Info);
  double StagedSeconds = 0.0, OriginalSeconds = 0.0;
  unsigned Frames = 0;

  for (auto [ParamIndex, Tweaks] : Session) {
    if (ParamIndex >= Info->Controls.size())
      continue;
    SpecializedShader &Spec = Installed.at(ParamIndex);
    const ControlParam &Param = Info->Controls[ParamIndex];
    auto Sweep = Lab.sweepValues(Param, Tweaks);

    // Grabbing the slider: the fixed context for this partition is the
    // current value of everything else -> run the loader once.
    auto Start = std::chrono::steady_clock::now();
    if (!Spec.load(Engine, Lab.grid(), Controls)) {
      std::fprintf(stderr, "loader trapped\n");
      return 1;
    }
    double LoadSeconds = secondsSince(Start);
    StagedSeconds += LoadSeconds;

    // Dragging: each tweak re-renders through the reader.
    double ReadSeconds = 0.0;
    for (unsigned T = 0; T < Tweaks; ++T) {
      Controls[ParamIndex] = Sweep[T];
      Start = std::chrono::steady_clock::now();
      if (!Spec.readFrame(Engine, Lab.grid(), Controls)) {
        std::fprintf(stderr, "reader trapped\n");
        return 1;
      }
      ReadSeconds += secondsSince(Start);

      // Baseline: what the unstaged renderer would have done.
      Start = std::chrono::steady_clock::now();
      Spec.originalFrame(Engine, Lab.grid(), Controls);
      OriginalSeconds += secondsSince(Start);
      ++Frames;
    }
    StagedSeconds += ReadSeconds;
    std::printf("  drag '%-10s' x%u: load %6.2f ms + read %6.2f ms\n",
                Param.Name.c_str(), Tweaks, LoadSeconds * 1e3,
                ReadSeconds * 1e3);
  }

  std::printf("\nsession total over %u frames: staged %.2f ms vs original "
              "%.2f ms  =>  %.2fx end-to-end (loader reinvocations "
              "included)\n",
              Frames, StagedSeconds * 1e3, OriginalSeconds * 1e3,
              OriginalSeconds / StagedSeconds);
  return 0;
}
