//===- examples/image_filter.cpp - Image-processing domain -------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 7.3 points at image processing as a second domain
/// with the right shape: huge numbers of simultaneous specializations
/// (one per output pixel) and interactive parameters. This example builds
/// an unsharp-masking resampler: each output pixel samples a 3x3
/// neighborhood of an expensive procedural image through a rotate/zoom
/// transform, then sharpens with a Laplacian scaled by a user parameter.
///
/// Varying `sharp` leaves the whole resampling invariant: the specializer
/// caches the center sample and the Laplacian (8 bytes per pixel), and
/// dragging the sharpness slider runs a three-operation reader per pixel.
/// Varying `zoom` invalidates the neighborhood, and the reader degrades
/// gracefully to nearly the original — both partitions are shown.
///
/// Usage: image_filter [size=96x64]
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "engine/CacheArena.h"
#include "engine/RenderContext.h"
#include "vm/VM.h"

#include <chrono>
#include <cstdio>

using namespace dspec;

namespace {

const char *FilterSource = R"(
// Unsharp-masked resampling of a procedural image.
float resample(float u, float v, float cx, float cy,
               float zoom, float angle, float sharp) {
  float ca = cos(angle);
  float sa = sin(angle);
  float dx = (u - cx) / zoom;
  float dy = (v - cy) / zoom;
  float sx = cx + dx * ca - dy * sa;
  float sy = cy + dx * sa + dy * ca;
  float d = 0.01;
  float c = fbm(vec3(sx * 4.0, sy * 4.0, 0.5), 6, 2.0, 0.5);
  float n = fbm(vec3(sx * 4.0, (sy - d) * 4.0, 0.5), 6, 2.0, 0.5);
  float s = fbm(vec3(sx * 4.0, (sy + d) * 4.0, 0.5), 6, 2.0, 0.5);
  float w = fbm(vec3((sx - d) * 4.0, sy * 4.0, 0.5), 6, 2.0, 0.5);
  float e = fbm(vec3((sx + d) * 4.0, sy * 4.0, 0.5), 6, 2.0, 0.5);
  float lap = n + s + w + e - 4.0 * c;
  return clamp(0.5 + c - sharp * lap, 0.0, 1.0);
}
)";

struct Timing {
  double LoaderMs = 0.0;
  double ReaderMs = 0.0;
  double OriginalMs = 0.0;
};

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Width = 96, Height = 64;
  if (Argc > 1)
    std::sscanf(Argv[1], "%ux%u", &Width, &Height);

  auto Unit = parseUnit(FilterSource);
  if (!Unit->ok()) {
    std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
    return 1;
  }

  struct Scenario {
    const char *Vary;
    std::vector<float> SweepValues;
  };
  const Scenario Scenarios[] = {
      {"sharp", {0.0f, 0.5f, 1.0f, 2.0f}},
      {"zoom", {1.0f, 1.2f, 1.5f, 2.0f}},
  };

  for (const Scenario &S : Scenarios) {
    auto Spec = specializeAndCompile(*Unit, "resample", {S.Vary});
    if (!Spec) {
      std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
      return 1;
    }
    std::printf("varying '%s': cache %u bytes/pixel x %u pixels = %.1f KiB\n",
                S.Vary, Spec->Spec.Layout.totalBytes(), Width * Height,
                Spec->Spec.Layout.totalBytes() * Width * Height / 1024.0);

    VM Machine;
    // One contiguous packed allocation for every pixel's cache: exactly
    // layout-bytes x pixels, instead of one boxed vector per pixel.
    CacheArena Arena(Width * Height, Spec->Spec.Layout);
    Framebuffer Image(Width, Height);

    // Control values: center/zoom/angle fixed, the varying one sweeps.
    float CX = 0.5f, CY = 0.5f, Zoom = 1.3f, Angle = 0.35f, Sharp = 0.8f;
    auto ArgsFor = [&](unsigned X, unsigned Y) {
      float U = static_cast<float>(X) / (Width - 1);
      float V = static_cast<float>(Y) / (Height - 1);
      return std::vector<Value>{
          Value::makeFloat(U),     Value::makeFloat(V),
          Value::makeFloat(CX),    Value::makeFloat(CY),
          Value::makeFloat(Zoom),  Value::makeFloat(Angle),
          Value::makeFloat(Sharp)};
    };

    Timing T;
    auto Start = std::chrono::steady_clock::now();
    for (unsigned Y = 0; Y < Height; ++Y)
      for (unsigned X = 0; X < Width; ++X)
        Machine.run(Spec->LoaderChunk, ArgsFor(X, Y),
                    Arena.view(Y * Width + X));
    T.LoaderMs = msSince(Start);

    for (float V : S.SweepValues) {
      if (S.Vary == std::string("sharp"))
        Sharp = V;
      else
        Zoom = V;
      Start = std::chrono::steady_clock::now();
      for (unsigned Y = 0; Y < Height; ++Y)
        for (unsigned X = 0; X < Width; ++X) {
          auto R = Machine.run(Spec->ReaderChunk, ArgsFor(X, Y),
                               Arena.view(Y * Width + X));
          float G = R.Result.asFloat();
          Image.at(X, Y) = Value::makeVec3(G, G, G);
        }
      T.ReaderMs += msSince(Start);

      Start = std::chrono::steady_clock::now();
      for (unsigned Y = 0; Y < Height; ++Y)
        for (unsigned X = 0; X < Width; ++X)
          Machine.run(Spec->OriginalChunk, ArgsFor(X, Y));
      T.OriginalMs += msSince(Start);
    }

    char Path[64];
    std::snprintf(Path, sizeof(Path), "filter_%s.ppm", S.Vary);
    Image.writePPM(Path);
    std::printf("  loader pass %.1f ms; per sweep: reader %.1f ms vs "
                "original %.1f ms  =>  %.1fx; wrote %s\n\n",
                T.LoaderMs, T.ReaderMs, T.OriginalMs,
                T.OriginalMs / T.ReaderMs, Path);
  }
  return 0;
}
